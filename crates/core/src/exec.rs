//! Executing a compiled plan.
//!
//! The executor holds an immutable, shareable [`CompiledPlan`] and splits
//! every execution into two replays:
//!
//! * **Virtual-timing replay** ([`Executor::execute`]'s first half) —
//!   enqueues every task on the owning stream of the
//!   [`neon_sys::QueueSim`] virtual clock: kernels cost
//!   `launch + bytes/bandwidth` (roofline), halo transfers cost
//!   `latency + bytes/link-bandwidth` per segment on dedicated per-device
//!   transfer lanes (one per direction, modelling a GPU's copy engines),
//!   host steps synchronize all devices. Every overlap the schedule
//!   enables shows up as reduced makespan — this is how the paper's OCC
//!   figures are reproduced without hardware.
//!
//! * **Functional replay** — actually runs the compute lambdas over the
//!   partition data. In the default [`FunctionalMode::Parallel`] mode a
//!   persistent per-device [`neon_sys::WorkerPool`] walks the compiled
//!   [`DevicePlan`]: each worker executes *its* device's steps in schedule
//!   order and synchronizes with the other workers through atomic event
//!   slots exactly where the event table says to wait — so internal
//!   kernels, boundary kernels and halo copies really overlap on the host,
//!   mirroring the virtual-clock model (paper §IV-D). The
//!   [`FunctionalMode::Serial`] reference walks tasks strictly in order on
//!   the calling thread; parity tests pin the two bit for bit.
//!
//! Tasks, nodes, parent lists, halo descriptors and the event table are
//! *borrowed from the plan by index* — the hot loop clones nothing per
//! task and allocates nothing in steady state; the per-node
//! completion-time table is a flat scratch buffer reused across
//! iterations.
//!
//! Event semantics are per-device: a kernel on device *d* waits for its
//! data parents on *d*; a halo transfer waits for its sources' and
//! destination's parents; a host step waits for everything.

#![allow(clippy::needless_range_loop)] // device loops index per-device tables

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use neon_comm::{CollectiveEngine, CollectiveKind, EngineConfig};
use neon_sys::{
    Backend, DeviceId, FaultInjector, FaultPlan, FaultSite, FaultSiteKind, FaultStats,
    FaultVerdict, PermanentFault, QueueSim, RetryPolicy, SimTime, SpanKind, StreamId, Trace,
    WorkerPool,
};

use crate::collective::CollectiveMode;
use crate::devplan::{DevAction, DevicePlan};
use crate::graph::{Graph, NodeKind};
use crate::plan::CompiledPlan;
use crate::schedule::Schedule;

/// How halo coherency is realized (paper §IV-C2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HaloPolicy {
    /// Explicit peer-to-peer copies on dedicated transfer lanes — the
    /// model the paper's grids use, and the one OCC can overlap.
    ExplicitTransfers,
    /// Driver-managed unified memory: remote pages migrate on first
    /// touch *inside* the consuming kernel, so migration time serializes
    /// with computation on the device's compute lane and no overlap is
    /// possible — the performance penalty the paper cites for rejecting
    /// this design.
    UnifiedMemory {
        /// Migration page size in bytes (2 MiB on modern GPUs).
        page_bytes: u64,
        /// Fault-handling latency per page group, in µs.
        fault_us: f64,
        /// Sustained migration bandwidth, in GB/s.
        bandwidth_gb_s: f64,
    },
}

impl HaloPolicy {
    /// The unified-memory model with typical NVLink-system parameters.
    pub fn unified_default() -> Self {
        HaloPolicy::UnifiedMemory {
            page_bytes: 2 << 20,
            fault_us: 25.0,
            bandwidth_gb_s: 50.0,
        }
    }
}

/// How communication completion is signaled to downstream compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommMode {
    /// Whole-transfer epochs: a consumer on device *d* waits for the
    /// entire halo node to finish on *d* — every arriving payload **and**
    /// the device's own outgoing sends — before any of its cells run.
    #[default]
    Epoch,
    /// Per-chunk events: halo payloads stream in
    /// [`crate::devplan::comm_chunks`]-sized chunks, each signaling its
    /// own event slot on arrival. The timing replay splits a consuming
    /// kernel into an *interior* span (starts as soon as its non-halo
    /// inputs are ready — it touches no halo layer) and a *boundary*
    /// span gated only on the last arriving chunk, so interior work
    /// overlaps in-flight communication and a device's own outgoing
    /// sends never gate its compute. Collective steps already stream
    /// per-chunk inside the engine; this mode extends the same
    /// granularity to halo exchanges. Bit-identical to [`CommMode::Epoch`]
    /// on the functional side: the event table only gets finer, the
    /// ordering it enforces is unchanged.
    ChunkEvents,
}

/// How the functional replay runs the compute lambdas on host threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FunctionalMode {
    /// Walk tasks strictly in schedule order on the calling thread: the
    /// bit-exactness reference.
    Serial,
    /// One `std::thread::scope` per kernel launch (the historical
    /// behavior): per-device parallelism inside a launch, a full
    /// spawn/join round trip per launch, no cross-task overlap.
    SpawnPerLaunch,
    /// Event-driven replay on a persistent per-device worker pool walking
    /// the compiled [`DevicePlan`] — cross-task overlap exactly where the
    /// event table allows it, no thread spawns in steady state.
    #[default]
    Parallel,
}

/// A structured execution failure.
///
/// The executor's hot path reports malformed plans and injected faults as
/// values instead of panicking: a solver embedding the executor can retry,
/// roll back or evict a device without unwinding through foreign frames.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A transient injected fault failed every allowed attempt. The
    /// iteration aborted mid-replay (earlier nodes already ran), so the
    /// caller must roll back to the last checkpoint before continuing.
    TransientFaultEscaped {
        /// Device whose operation kept failing.
        device: DeviceId,
        /// Kind of operation that failed.
        kind: FaultSiteKind,
        /// Logical iteration that aborted.
        iteration: u64,
        /// Attempts made (the policy's bound).
        attempts: u32,
    },
    /// A device was lost permanently. Every subsequent execution fails the
    /// same way until the caller rebuilds the plan on the survivors.
    DeviceLost {
        /// The dead device.
        device: DeviceId,
        /// Logical iteration at whose start the loss was detected.
        iteration: u64,
    },
    /// A link was severed permanently: the topology the plan was compiled
    /// on no longer exists, so its halo schedules and collective routes are
    /// stale. Every subsequent execution fails the same way until the
    /// caller recompiles on the degraded topology
    /// ([`neon_sys::Backend::without_link`]). All devices survive, so no
    /// state migration is needed — resume from the last checkpoint.
    LinkLost {
        /// One endpoint of the dead wire.
        src: DeviceId,
        /// The other endpoint.
        dst: DeviceId,
        /// Logical iteration at whose start the loss was detected.
        iteration: u64,
    },
    /// A link was permanently degraded to a fraction of its bandwidth.
    /// Like [`ExecError::LinkLost`], the compiled plan's timing model is
    /// stale; rebuild on [`neon_sys::Backend::with_degraded_link`].
    LinkDegraded {
        /// One endpoint of the degraded wire.
        src: DeviceId,
        /// The other endpoint.
        dst: DeviceId,
        /// Remaining bandwidth fraction in `(0, 1]`.
        factor: f64,
        /// Logical iteration at whose start the degrade was detected.
        iteration: u64,
    },
    /// A compute node carries no iteration space.
    MissingIterationSpace {
        /// Name of the offending node.
        node: String,
    },
    /// A reduce/host/collective step's node carries no container.
    MissingContainer {
        /// Name of the offending node.
        node: String,
    },
    /// A device-plan step references a node of an incompatible kind.
    MalformedStep {
        /// Name of the offending node.
        node: String,
    },
    /// The parallel replay was poisoned before this worker could finish
    /// (the root cause is reported by the worker that failed).
    ReplayPoisoned,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::TransientFaultEscaped {
                device,
                kind,
                iteration,
                attempts,
            } => write!(
                f,
                "transient {kind} fault on device {} escaped retry \
                 (iteration {iteration}, {attempts} attempts); roll back required",
                device.0
            ),
            ExecError::DeviceLost { device, iteration } => {
                write!(f, "device {} lost at iteration {iteration}", device.0)
            }
            ExecError::LinkLost {
                src,
                dst,
                iteration,
            } => write!(
                f,
                "link {}<->{} lost at iteration {iteration}; recompile on the \
                 degraded topology",
                src.0, dst.0
            ),
            ExecError::LinkDegraded {
                src,
                dst,
                factor,
                iteration,
            } => write!(
                f,
                "link {}<->{} degraded to {:.0}% bandwidth at iteration \
                 {iteration}; recompile on the degraded topology",
                src.0,
                dst.0,
                factor * 100.0
            ),
            ExecError::MissingIterationSpace { node } => {
                write!(f, "compute node '{node}' has no iteration space")
            }
            ExecError::MissingContainer { node } => {
                write!(f, "node '{node}' has no container")
            }
            ExecError::MalformedStep { node } => {
                write!(
                    f,
                    "device-plan step references node '{node}' of incompatible kind"
                )
            }
            ExecError::ReplayPoisoned => f.write_str("parallel replay poisoned"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Timing summary of one or more executions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecReport {
    /// Wall-clock (virtual) time from first enqueue to last completion.
    pub makespan: SimTime,
    /// Total kernel busy time summed over all streams and devices.
    pub kernel_time: SimTime,
    /// Total transfer busy time summed over all lanes.
    pub transfer_time: SimTime,
    /// Total host-step time.
    pub host_time: SimTime,
    /// Total collective-communication busy time over all lanes.
    pub collective_time: SimTime,
    /// Kernel launches enqueued (one per compute node per device with a
    /// non-empty partition; fusion shrinks this).
    pub launches: u64,
    /// Bytes swept by those kernels (cells × the container's per-cell
    /// bytes, summed over launches; fused reads of just-written fields
    /// count zero).
    pub bytes_moved: u64,
    /// FLOPs spent recomputing ghost cells another device owns (temporal
    /// blocking's overlapped tiling; zero without a super-step).
    pub redundant_flops: u64,
    /// Halo-exchange rounds executed (one per halo node per execution,
    /// whatever its depth — temporal blocking trades `k` depth-`r` rounds
    /// for one depth-`k·r` round).
    pub halo_rounds: u64,
    /// Number of executions aggregated.
    pub executions: u64,
    /// Fault events injected during these executions (transient specs
    /// fired plus device losses).
    pub faults_injected: u64,
    /// Transient faults absorbed by retry (no rollback needed).
    pub faults_recovered: u64,
    /// Failed attempts that were re-tried.
    pub retries: u64,
}

impl ExecReport {
    /// Fold another report into this one (used when aggregating across
    /// iterations, rollback segments, or recovery epochs).
    pub fn accumulate(&mut self, other: ExecReport) {
        self.makespan += other.makespan;
        self.kernel_time += other.kernel_time;
        self.transfer_time += other.transfer_time;
        self.host_time += other.host_time;
        self.collective_time += other.collective_time;
        self.launches += other.launches;
        self.bytes_moved += other.bytes_moved;
        self.redundant_flops += other.redundant_flops;
        self.halo_rounds += other.halo_rounds;
        self.executions += other.executions;
        self.faults_injected += other.faults_injected;
        self.faults_recovered += other.faults_recovered;
        self.retries += other.retries;
    }

    /// Average makespan per execution.
    ///
    /// Every execution ends with a [`neon_sys::QueueSim::sync_all`] — a
    /// zero-cost *alignment barrier* on the virtual clock that raises all
    /// streams to the global maximum. Because of that barrier, successive
    /// iterations cannot overlap on the virtual clock, the summed
    /// `makespan` is exactly the sum of the individual iteration
    /// makespans, and this average is exact — but it also flattens any
    /// per-iteration variance. Use
    /// [`Executor::per_iteration_makespans`] when the distribution
    /// matters.
    pub fn time_per_execution(&self) -> SimTime {
        if self.executions == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_us(self.makespan.as_us() / self.executions as f64)
        }
    }
}

/// Iterations a waiter spins before parking on the condvar, scaled to
/// the host: with enough cores to run every device worker concurrently,
/// slots are signaled microseconds apart and a longer spin catches them
/// without two context switches per dependency edge; on an oversubscribed
/// host spinning steals cycles from the very worker being waited for, so
/// the budget collapses (to zero on a single core).
fn wait_spin() -> usize {
    match neon_sys::host_cores() {
        0 | 1 => 0,
        2 | 3 => 64,
        _ => 512,
    }
}

/// The event table of the parallel functional replay: one atomic epoch
/// counter per [`DevicePlan`] slot.
///
/// A slot stores the executor epoch in which it was last signaled; a
/// waiter for epoch `e` proceeds once the slot holds `>= e`. Nothing is
/// ever cleared — bumping the epoch invalidates all slots at once, which
/// also makes slots left behind by a panicked (poisoned) replay harmless.
struct EventSlots {
    slots: Vec<AtomicU64>,
    lock: Mutex<()>,
    cv: Condvar,
    poisoned: AtomicBool,
}

impl EventSlots {
    fn new(n: usize) -> Self {
        EventSlots {
            slots: (0..n).map(|_| AtomicU64::new(0)).collect(),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn signal(&self, slot: usize, epoch: u64) {
        self.slots[slot].store(epoch, Ordering::Release);
        // The empty critical section pairs with the waiter's
        // check-then-wait under the same lock: no lost wakeups. The lock
        // guards no data, so a poisoned mutex (a worker panicked while
        // holding it) is harmless — take it anyway.
        drop(self.lock.lock().unwrap_or_else(|e| e.into_inner()));
        self.cv.notify_all();
    }

    /// Wait until `slot` reaches `epoch`. Returns false if the replay was
    /// poisoned by a panicking worker — the caller must abandon its walk.
    fn wait(&self, slot: usize, epoch: u64) -> bool {
        for _ in 0..wait_spin() {
            if self.slots[slot].load(Ordering::Acquire) >= epoch {
                return true;
            }
            if self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.slots[slot].load(Ordering::Acquire) >= epoch {
                return true;
            }
            if self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            // The timeout is belt-and-braces only; the signal-side lock
            // bracket already rules out lost wakeups.
            let (g, _) = self
                .cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        drop(self.lock.lock().unwrap_or_else(|e| e.into_inner()));
        self.cv.notify_all();
    }

    fn clear_poison(&self) {
        self.poisoned.store(false, Ordering::Release);
    }
}

/// Replays a compiled plan on the virtual clock and (optionally) the real
/// data.
pub struct Executor {
    backend: Backend,
    plan: Arc<CompiledPlan>,
    queue: QueueSim,
    compute_streams: usize,
    functional: bool,
    functional_mode: FunctionalMode,
    kernel_concurrency: bool,
    halo_policy: HaloPolicy,
    engine: CollectiveEngine,
    collective_mode: CollectiveMode,
    comm_mode: CommMode,
    /// Precomputed `("<name>:int", "<name>:bnd")` span labels per compute
    /// node, built on the first switch to [`CommMode::ChunkEvents`] so the
    /// split replay formats nothing per launch per iteration.
    split_names: Vec<(String, String)>,
    /// The plan's per-device task partition + event table.
    devplan: Arc<DevicePlan>,
    /// Persistent per-device workers, spawned on the first parallel
    /// functional replay and parked between jobs.
    pool: Option<WorkerPool>,
    /// Event slots backing the parallel replay, sized to the device plan.
    events: EventSlots,
    /// Current replay epoch (bumped once per parallel functional replay).
    func_epoch: u64,
    /// Whether every halo exchange supports per-device execution — if not,
    /// the parallel replay falls back to the serial reference (a
    /// whole-exchange `execute()` takes whole-partition leases that would
    /// falsely conflict with overlapping internal kernels).
    parallel_halo_ok: bool,
    /// Precomputed `"<name>(um)"` span labels, one per node (empty for
    /// non-halo nodes), so the unified-memory path formats nothing per
    /// descriptor per iteration.
    um_names: Vec<String>,
    /// Fault injector shared with the virtual-clock queue (kernel faults
    /// are observed inside `enqueue_from`; transfer faults at halo nodes).
    injector: Option<Arc<FaultInjector>>,
    /// Logical solver iteration of the *next* execution — the coordinate
    /// fault plans target. Advanced by each successful execution; a
    /// resilient runner rewinds it on rollback.
    logical_iteration: u64,
    /// Graph node at which a [`FaultSiteKind::Link`] escape fired during
    /// the timing replay: link faults are observed inside the collective
    /// engine (no per-device occurrence counters on this side), so the
    /// functional replay aborts at node granularity — the whole collective
    /// is uncommitted.
    escape_node: Option<usize>,
    /// Per-device kernel busy time of the most recent execution (the
    /// straggler monitor's sample source).
    dev_kernel_scratch: Vec<SimTime>,
    /// Per-iteration makespans of the most recent `execute_iters` call.
    iter_makespans: Vec<SimTime>,
    /// Flat `node × device` completion-time table, reused across
    /// executions.
    ends_scratch: Vec<SimTime>,
    /// Per-device staging buffer for halo/collective readiness times,
    /// reused across tasks.
    lane_scratch: Vec<SimTime>,
    /// Chunk-events side tables, flat `node × device`, reused across
    /// executions (only sized under [`CommMode::ChunkEvents`]): halo input
    /// readiness, last-chunk arrival, and arriving halo bytes.
    halo_ready_scratch: Vec<SimTime>,
    halo_arrive_scratch: Vec<SimTime>,
    halo_bytes_scratch: Vec<u64>,
}

impl Executor {
    /// Build an executor over an already-built graph and schedule
    /// (compatibility path; the skeleton uses [`Executor::from_plan`]).
    pub fn new(backend: Backend, graph: Graph, schedule: Schedule) -> Self {
        Self::from_plan(backend, CompiledPlan::from_parts(graph, schedule))
    }

    /// Build an executor over a shared compiled plan. Functional execution
    /// is enabled iff every compute node's iteration space has real
    /// storage.
    pub fn from_plan(backend: Backend, plan: Arc<CompiledPlan>) -> Self {
        let compute_streams = plan.schedule().num_streams;
        // lanes: [0, compute_streams) kernels, +0/+1 transfers, +2 host,
        // +3 collectives.
        let queue = QueueSim::new(backend.num_devices(), compute_streams + 4);
        let engine = CollectiveEngine::new(backend.topology().clone());
        let functional = plan.graph().nodes().iter().all(|n| match &n.kind {
            NodeKind::Compute { container, .. } => container
                .space()
                .map(|s| s.supports_functional())
                .unwrap_or(true),
            _ => true,
        });
        let parallel_halo_ok = plan.graph().nodes().iter().all(|n| match &n.kind {
            NodeKind::Halo { exchange } => exchange.supports_per_device(),
            _ => true,
        });
        let um_names = plan
            .graph()
            .nodes()
            .iter()
            .map(|n| {
                if n.is_halo() {
                    format!("{}(um)", n.name)
                } else {
                    String::new()
                }
            })
            .collect();
        let devplan = Arc::clone(plan.device_plan());
        let events = EventSlots::new(devplan.num_slots());
        Executor {
            backend,
            plan,
            queue,
            compute_streams,
            functional,
            functional_mode: FunctionalMode::default(),
            kernel_concurrency: false,
            halo_policy: HaloPolicy::ExplicitTransfers,
            engine,
            collective_mode: CollectiveMode::default(),
            comm_mode: CommMode::default(),
            split_names: Vec::new(),
            devplan,
            pool: None,
            events,
            func_epoch: 0,
            parallel_halo_ok,
            um_names,
            injector: None,
            logical_iteration: 0,
            escape_node: None,
            dev_kernel_scratch: Vec::new(),
            iter_makespans: Vec::new(),
            ends_scratch: Vec::new(),
            lane_scratch: Vec::new(),
            halo_ready_scratch: Vec::new(),
            halo_arrive_scratch: Vec::new(),
            halo_bytes_scratch: Vec::new(),
        }
    }

    /// The plan this executor replays.
    pub fn plan(&self) -> &Arc<CompiledPlan> {
        &self.plan
    }

    /// Select the halo coherency model (see [`HaloPolicy`]).
    pub fn set_halo_policy(&mut self, policy: HaloPolicy) {
        self.halo_policy = policy;
    }

    /// Select how collective nodes pick their algorithm (default:
    /// [`CollectiveMode::Auto`]).
    pub fn set_collective_mode(&mut self, mode: CollectiveMode) {
        self.collective_mode = mode;
        self.engine = CollectiveEngine::with_config(
            self.backend.topology().clone(),
            EngineConfig {
                algorithm: mode.fixed_algorithm(),
                ..EngineConfig::default()
            },
        );
    }

    /// Select how communication completion gates downstream compute
    /// (default: [`CommMode::Epoch`]).
    pub fn set_comm_mode(&mut self, mode: CommMode) {
        self.comm_mode = mode;
        if mode == CommMode::ChunkEvents && self.split_names.is_empty() {
            self.split_names = self
                .plan
                .graph()
                .nodes()
                .iter()
                .map(|n| match n.kind {
                    NodeKind::Compute { .. } => {
                        (format!("{}:int", n.name), format!("{}:bnd", n.name))
                    }
                    _ => (String::new(), String::new()),
                })
                .collect();
        }
    }

    /// The configured communication-signaling mode.
    pub fn comm_mode(&self) -> CommMode {
        self.comm_mode
    }

    /// The virtual-clock simulator (link utilization counters live here).
    pub fn queue(&self) -> &QueueSim {
        &self.queue
    }

    /// Snapshot the simulator's cumulative utilization counters
    /// ([`neon_sys::CounterSnapshot`]). Two snapshots bracketing a window of
    /// executions subtract to that window's own traffic — the race-free
    /// alternative to [`Executor::reset_counters`] under multi-tenancy.
    pub fn counters_snapshot(&self) -> neon_sys::CounterSnapshot {
        self.queue.counters_snapshot()
    }

    /// Let kernels of different streams run concurrently at full modelled
    /// bandwidth each.
    ///
    /// Off by default: the applications here are memory-bound, and a real
    /// GPU's bandwidth is shared between concurrent kernels, so the
    /// faithful model serializes a device's kernels on one lane (transfers
    /// keep their own DMA lanes). Enabling this reproduces the unphysical
    /// super-linear efficiencies the ablation demonstrates.
    pub fn set_kernel_concurrency(&mut self, on: bool) {
        self.kernel_concurrency = on;
    }

    /// Whether kernels actually run on data (vs. timing-only).
    pub fn is_functional(&self) -> bool {
        self.functional
    }

    /// Force timing-only execution (used by large benchmark sweeps).
    pub fn set_functional(&mut self, on: bool) {
        assert!(
            !on || self.plan.graph().nodes().iter().all(|n| match &n.kind {
                NodeKind::Compute { container, .. } => container
                    .space()
                    .map(|s| s.supports_functional())
                    .unwrap_or(true),
                _ => true,
            }),
            "cannot enable functional execution on virtual storage"
        );
        self.functional = on;
    }

    /// Select how the functional replay parallelizes (default:
    /// [`FunctionalMode::Parallel`]).
    pub fn set_functional_mode(&mut self, mode: FunctionalMode) {
        self.functional_mode = mode;
    }

    /// The current functional replay mode.
    pub fn functional_mode(&self) -> FunctionalMode {
        self.functional_mode
    }

    /// Per-device kernel busy time of the most recent execution, indexed
    /// by device rank. This is the deterministic sample the straggler
    /// monitor ([`crate::health::StragglerMonitor`]) folds into its EWMA:
    /// it comes straight off the virtual clock, so two runs of the same
    /// plan produce bit-identical health histories.
    pub fn per_device_kernel_time(&self) -> &[SimTime] {
        &self.dev_kernel_scratch
    }

    /// Makespans of the individual iterations of the most recent
    /// [`Executor::execute_iters`] call, in order.
    ///
    /// [`ExecReport::time_per_execution`] only exposes the mean; this is
    /// the full per-iteration distribution for variance reporting.
    pub fn per_iteration_makespans(&self) -> &[SimTime] {
        &self.iter_makespans
    }

    /// Install a fault plan, replacing any previous one. Faults are
    /// delivered deterministically by `(iteration, device, kind, nth)`;
    /// transient faults are retried up to `policy.max_attempts` with
    /// exponential backoff on the virtual clock.
    pub fn install_fault_plan(&mut self, plan: FaultPlan, policy: RetryPolicy) {
        let injector = FaultInjector::new(plan, policy, self.backend.num_devices());
        self.queue.set_fault_injector(Some(Arc::clone(&injector)));
        self.injector = Some(injector);
    }

    /// Remove the installed fault plan (executions run clean again).
    pub fn clear_fault_plan(&mut self) {
        self.queue.set_fault_injector(None);
        self.injector = None;
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Lifetime fault counters (zero without an installed plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.injector
            .as_ref()
            .map(|i| i.stats())
            .unwrap_or_default()
    }

    /// Set the logical iteration the next execution runs as (the
    /// coordinate fault plans target). Resilient runners rewind this after
    /// a rollback so the replayed iterations keep their original numbers.
    pub fn set_logical_iteration(&mut self, iteration: u64) {
        self.logical_iteration = iteration;
    }

    /// The logical iteration of the next execution.
    pub fn logical_iteration(&self) -> u64 {
        self.logical_iteration
    }

    /// Zero the queue's cumulative utilization counters (see
    /// [`neon_sys::QueueSim::reset_counters`]); benchmarks call this
    /// between sweep configurations.
    pub fn reset_counters(&mut self) {
        self.queue.reset_counters();
    }

    /// Enable span recording on the virtual clock.
    pub fn enable_trace(&mut self) {
        self.queue.enable_trace();
    }

    /// Take the recorded trace (if tracing was enabled).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.queue.take_trace()
    }

    fn transfer_lane(&self, src: DeviceId, dst: DeviceId) -> usize {
        self.compute_streams + usize::from(dst.0 < src.0)
    }

    fn host_lane(&self) -> usize {
        self.compute_streams + 2
    }

    fn collective_lane(&self) -> usize {
        self.compute_streams + 3
    }

    /// Execute the plan once: the virtual-timing replay, then (when
    /// functional) the functional replay in the configured mode.
    ///
    /// Panics on a structural failure or an unrecovered fault; use
    /// [`Executor::try_execute`] to handle those as values.
    pub fn execute(&mut self) -> ExecReport {
        self.try_execute()
            .unwrap_or_else(|e| panic!("execution failed: {e}"))
    }

    /// [`Executor::execute`], reporting failures as [`ExecError`].
    ///
    /// With a fault plan installed, recovered transients show up only as
    /// extra virtual time and report counters. A fault that escapes retry
    /// aborts the functional replay exactly at the faulted operation —
    /// earlier nodes of the iteration have already mutated data, so the
    /// caller must restore a checkpoint before continuing. A scheduled
    /// device loss fails every execution from its iteration on.
    pub fn try_execute(&mut self) -> Result<ExecReport, ExecError> {
        // Clone the Arc so plan data can be borrowed by index while the
        // queue (and scratch) are mutated — nothing inside is copied.
        let plan = Arc::clone(&self.plan);
        let t0 = self.queue.makespan();
        let iteration = self.logical_iteration;
        let stats_before = self.injector.as_ref().map(|i| i.stats());
        if let Some(inj) = &self.injector {
            if let Err(fault) = inj.begin_iteration(iteration) {
                return Err(match fault {
                    PermanentFault::DeviceLoss(device) => {
                        ExecError::DeviceLost { device, iteration }
                    }
                    PermanentFault::LinkLoss(src, dst) => ExecError::LinkLost {
                        src,
                        dst,
                        iteration,
                    },
                    PermanentFault::LinkDegrade(src, dst, factor) => ExecError::LinkDegraded {
                        src,
                        dst,
                        factor,
                        iteration,
                    },
                });
            }
        }
        self.escape_node = None;
        let mut report = ExecReport {
            executions: 1,
            ..Default::default()
        };
        self.replay_timing(&plan, t0, &mut report)?;
        let escape = self.injector.as_ref().and_then(|i| i.escape_site());
        if self.functional {
            match escape {
                Some(site) => self.replay_functional_until(&plan, site)?,
                None => self.replay_functional(&plan)?,
            }
        }

        // Align all streams at the end of one execution so iterations
        // measure cleanly (a zero-cost barrier on the virtual clock).
        let end = self.queue.sync_all();
        report.makespan = end - t0;
        if let Some(before) = stats_before {
            let after = self.fault_stats();
            report.faults_injected = after.injected - before.injected;
            report.faults_recovered = after.recovered - before.recovered;
            report.retries = after.retries - before.retries;
        }
        if self.queue.trace().is_some() {
            let topo = self.backend.topology();
            let stats: Vec<(String, f64, u64)> = (0..topo.num_link_resources())
                .map(|r| {
                    (
                        topo.link_resource_name(r).to_string(),
                        self.queue.link_busy_time(r).as_us(),
                        self.queue.link_contention_events(r),
                    )
                })
                .collect();
            let (launches, kernel_bytes) = (
                self.queue.kernel_launches(),
                self.queue.kernel_bytes_moved(),
            );
            if let Some(trace) = self.queue.trace_mut() {
                for (name, busy, contended) in stats {
                    trace.set_counter(&format!("link:{name}:busy_us"), busy);
                    trace.set_counter(&format!("link:{name}:contended"), contended as f64);
                }
                trace.set_counter("kernel:launches", launches as f64);
                trace.set_counter("kernel:bytes_moved", kernel_bytes as f64);
            }
        }
        if let Some(site) = escape {
            // The iteration aborted: leave `logical_iteration` in place so
            // a bare retry re-runs the same iteration (its fault specs are
            // consumed, so the re-run is clean).
            let attempts = self
                .injector
                .as_ref()
                .map(|i| i.policy().max_attempts)
                .unwrap_or(1);
            return Err(ExecError::TransientFaultEscaped {
                device: site.device,
                kind: site.kind,
                iteration,
                attempts,
            });
        }
        self.logical_iteration = iteration + 1;
        Ok(report)
    }

    /// The virtual-clock half of one execution.
    fn replay_timing(
        &mut self,
        plan: &CompiledPlan,
        t0: SimTime,
        report: &mut ExecReport,
    ) -> Result<(), ExecError> {
        let graph = plan.graph();
        let schedule = plan.schedule();
        let ndev = self.backend.num_devices();
        let chunk_policy = self.devplan.chunk_policy();
        // Kernel faults are observed inside `enqueue_from`; transfer
        // faults are consulted here, once per (halo node, destination).
        let injector = self.injector.clone();
        let backoff = injector
            .as_ref()
            .map(|i| i.policy().backoff)
            .unwrap_or(SimTime::ZERO);
        // Completion time of each node on each device, flat `node × dev`.
        let mut ends = std::mem::take(&mut self.ends_scratch);
        ends.clear();
        ends.resize(graph.len() * ndev, t0);
        // Per-device kernel busy samples for the straggler monitor.
        let mut dev_kernel = std::mem::take(&mut self.dev_kernel_scratch);
        dev_kernel.clear();
        dev_kernel.resize(ndev, SimTime::ZERO);
        // Per-device transfer-observation counter mirroring the injector's
        // own: the `nth` it yields maps a retry verdict onto the actual
        // faulted chunk's slot instead of always chunk 0.
        let mut xfer_seen: Vec<u32> = if injector.is_some() {
            vec![0; ndev]
        } else {
            Vec::new()
        };
        // Chunk-events side tables (only maintained in that mode): per
        // halo node and destination device, when the halo's *inputs* were
        // ready, when the last chunk *arrived*, and how many bytes came
        // in. Unified memory has no explicit transfers to chunk, so the
        // mode only applies to the explicit-transfer policy.
        let chunked = self.comm_mode == CommMode::ChunkEvents
            && matches!(self.halo_policy, HaloPolicy::ExplicitTransfers);
        let mut h_ready = std::mem::take(&mut self.halo_ready_scratch);
        let mut h_arrive = std::mem::take(&mut self.halo_arrive_scratch);
        let mut h_bytes = std::mem::take(&mut self.halo_bytes_scratch);
        if chunked {
            h_ready.clear();
            h_ready.resize(graph.len() * ndev, t0);
            h_arrive.clear();
            h_arrive.resize(graph.len() * ndev, t0);
            h_bytes.clear();
            h_bytes.resize(graph.len() * ndev, 0);
        }

        for task in &schedule.tasks {
            let node_id = task.node;
            let node = graph.node(node_id);
            let parents = plan.data_parents(node_id);

            match &node.kind {
                NodeKind::Compute {
                    container,
                    view,
                    reduce_finalize,
                    ..
                } => {
                    let space = container.space().ok_or_else(|| {
                        // The taken `ends` scratch is dropped on this exit
                        // path; the next execution just re-allocates it.
                        ExecError::MissingIterationSpace {
                            node: node.name.clone(),
                        }
                    })?;
                    let bytes_per_cell = container.bytes_per_cell();
                    let flops_per_cell = container.flops_per_cell();
                    let eff = container.bw_efficiency();
                    let temporal = container.temporal_spec();
                    for d in 0..ndev {
                        let dev = DeviceId(d);
                        let earliest = parents
                            .iter()
                            .map(|&p| ends[p * ndev + d])
                            .fold(t0, SimTime::max);
                        let cells = space.cell_count(dev, *view);
                        if cells == 0 {
                            ends[node_id * ndev + d] = earliest;
                            continue;
                        }
                        // A temporal super-step runs k reps in one launch:
                        // rep j sweeps the interior expanded by (k-1-j)·r
                        // ghost layers. The memory system streams the
                        // expanded footprint once; flops accrue per rep,
                        // and those spent on cells another device owns are
                        // the scheme's redundant-recompute overhead.
                        let (bytes, flops, redundant) = match temporal {
                            Some(spec) => {
                                let k = spec.k as usize;
                                let footprint =
                                    space.cell_count_expanded(dev, (k - 1) * spec.radius);
                                let mut flops = 0u64;
                                let mut redundant = 0u64;
                                for j in 0..k {
                                    let swept =
                                        space.cell_count_expanded(dev, (k - 1 - j) * spec.radius);
                                    flops += swept * flops_per_cell;
                                    redundant += (swept - cells) * flops_per_cell;
                                }
                                (footprint * bytes_per_cell, flops, redundant)
                            }
                            None => (cells * bytes_per_cell, cells * flops_per_cell, 0),
                        };
                        let dur = self.backend.device(dev).kernel_time(bytes, flops, eff);
                        let lane = if self.kernel_concurrency {
                            task.stream
                        } else {
                            0
                        };
                        let stream = StreamId::new(dev, lane);
                        // Chunk events: split the launch around its halo
                        // inputs. Interior cells read no halo layer, so
                        // that share starts once the *non-halo* inputs
                        // (plus the halo's own input readiness, for
                        // transitive ordering) are done; the boundary
                        // share waits only for the last chunk *arriving*
                        // into this device — never for its outgoing
                        // sends. Both spans ride the same lane, so they
                        // serialize like a split launch.
                        let mut split = None;
                        if chunked {
                            let mut e0 = t0;
                            let mut arrive = t0;
                            let mut hbytes = 0u64;
                            let mut has_halo = false;
                            for &p in parents {
                                if graph.node(p).is_halo() {
                                    has_halo = true;
                                    e0 = e0.max(h_ready[p * ndev + d]);
                                    arrive = arrive.max(h_arrive[p * ndev + d]);
                                    hbytes += h_bytes[p * ndev + d];
                                } else {
                                    e0 = e0.max(ends[p * ndev + d]);
                                }
                            }
                            if has_halo && hbytes > 0 {
                                split = Some((e0, arrive, hbytes));
                            }
                        }
                        let e = match split {
                            Some((e0, arrive, hbytes)) => {
                                let frac = (hbytes as f64 / bytes.max(1) as f64).min(1.0);
                                let bnd = SimTime::from_us(dur.as_us() * frac);
                                let interior = dur - bnd;
                                let (int_name, bnd_name) = &self.split_names[node_id];
                                let (_, ie) = self.queue.enqueue_from(
                                    stream,
                                    e0,
                                    interior,
                                    int_name,
                                    SpanKind::Kernel,
                                );
                                let (_, e) = self.queue.enqueue_from(
                                    stream,
                                    ie.max(arrive),
                                    bnd,
                                    bnd_name,
                                    SpanKind::Kernel,
                                );
                                e
                            }
                            None => {
                                let (_, e) = self.queue.enqueue_from(
                                    stream,
                                    earliest,
                                    dur,
                                    &node.name,
                                    SpanKind::Kernel,
                                );
                                e
                            }
                        };
                        report.kernel_time += dur;
                        dev_kernel[d] += dur;
                        report.launches += 1;
                        report.bytes_moved += bytes;
                        report.redundant_flops += redundant;
                        self.queue.record_launch(bytes);
                        if redundant > 0 {
                            self.queue.record_redundant_flops(redundant);
                        }
                        ends[node_id * ndev + d] = e;
                    }
                    if *reduce_finalize {
                        // Folding partials into the host value synchronizes
                        // the devices and pays a host round trip.
                        let sync = self.backend.device(DeviceId(0)).sync_overhead();
                        let gmax = (0..ndev)
                            .map(|d| ends[node_id * ndev + d])
                            .fold(t0, SimTime::max)
                            + sync;
                        report.host_time += sync;
                        for d in 0..ndev {
                            ends[node_id * ndev + d] = gmax;
                        }
                    }
                }
                NodeKind::Halo { .. } => {
                    report.halo_rounds += 1;
                    self.queue.record_halo_round();
                    // lanes = [constraint | into | from], each `ndev` wide.
                    let mut lanes = std::mem::take(&mut self.lane_scratch);
                    lanes.clear();
                    lanes.resize(3 * ndev, t0);
                    for d in 0..ndev {
                        let c = parents
                            .iter()
                            .map(|&p| ends[p * ndev + d])
                            .fold(t0, SimTime::max);
                        lanes[d] = c;
                        lanes[ndev + d] = c;
                        lanes[2 * ndev + d] = c;
                        if chunked {
                            h_ready[node_id * ndev + d] = c;
                        }
                    }
                    // One transfer-fault verdict per destination device per
                    // halo node: the first descriptor into a destination
                    // carries the retry cost, later ones ride clean. Only
                    // allocated when an injector is installed. The returned
                    // `nth` is the observation's per-device occurrence
                    // index, which selects the chunk slot the verdict is
                    // charged to.
                    let mut verdicts: Option<Vec<Option<(FaultVerdict, u32)>>> =
                        injector.as_ref().map(|_| vec![None; ndev]);
                    let mut consult = |dst: DeviceId| -> (FaultVerdict, u32) {
                        match (&mut verdicts, &injector) {
                            (Some(v), Some(inj)) => match v[dst.0] {
                                Some((_, nth)) => (FaultVerdict::Clean, nth),
                                None => {
                                    let nth = xfer_seen[dst.0];
                                    xfer_seen[dst.0] += 1;
                                    let verdict = inj.observe(dst, FaultSiteKind::Transfer);
                                    v[dst.0] = Some((verdict, nth));
                                    (verdict, nth)
                                }
                            },
                            _ => (FaultVerdict::Clean, 0),
                        }
                    };
                    match self.halo_policy {
                        HaloPolicy::ExplicitTransfers => {
                            for desc in plan.halo_descriptors(node_id) {
                                let (verdict, nth) = consult(desc.dst);
                                let earliest = lanes[desc.src.0].max(lanes[desc.dst.0]);
                                let lane = self.transfer_lane(desc.src, desc.dst);
                                // Occupy the physical link: peer copies on a
                                // PCIe box all contend for the host root
                                // complex; NVLink pairs are dedicated.
                                let res =
                                    self.backend.topology().link_resources(desc.src, desc.dst);
                                let stream = StreamId::new(desc.src, lane);
                                // Chunk events stream the payload in
                                // engine-sized chunks, pipelined DMA-style:
                                // the first chunk pays the link round-trip
                                // latency, follow-on chunks ride the already
                                // -open channel at pure bandwidth. A retry
                                // verdict lands on the faulted chunk's own
                                // slot (`nth` mod the chunk count), other
                                // chunks ride clean; an escaped chunk aborts
                                // the rest of the payload.
                                let (cnum, cb) = if chunked {
                                    chunk_policy.chunks(desc.bytes)
                                } else {
                                    (1, desc.bytes)
                                };
                                let fault_chunk = nth as usize % cnum.max(1);
                                let latency =
                                    self.backend.topology().transfer_time(desc.src, desc.dst, 0);
                                let mut remaining = desc.bytes;
                                for k in 0..cnum {
                                    let b = cb.min(remaining);
                                    remaining -= b;
                                    let mut dur = self
                                        .backend
                                        .topology()
                                        .transfer_time(desc.src, desc.dst, b);
                                    if k > 0 {
                                        dur = (dur - latency).max(SimTime::ZERO);
                                    }
                                    let v = if k == fault_chunk {
                                        verdict
                                    } else {
                                        FaultVerdict::Clean
                                    };
                                    let (s, e) = self.queue.enqueue_transfer_with_faults(
                                        stream,
                                        earliest,
                                        dur,
                                        res,
                                        b,
                                        &node.name,
                                        SpanKind::Transfer,
                                        v,
                                        backoff,
                                    );
                                    report.transfer_time += e - s;
                                    lanes[ndev + desc.dst.0] = lanes[ndev + desc.dst.0].max(e);
                                    lanes[2 * ndev + desc.src.0] =
                                        lanes[2 * ndev + desc.src.0].max(e);
                                    if matches!(v, FaultVerdict::Escaped { .. }) {
                                        // The chunk never landed cleanly;
                                        // the rest of the payload is moot.
                                        break;
                                    }
                                }
                                if chunked {
                                    h_bytes[node_id * ndev + desc.dst.0] += desc.bytes;
                                }
                                if matches!(verdict, FaultVerdict::Escaped { .. }) {
                                    // The destination never receives a clean
                                    // payload; the iteration is aborting.
                                    break;
                                }
                            }
                        }
                        HaloPolicy::UnifiedMemory {
                            page_bytes,
                            fault_us,
                            bandwidth_gb_s,
                        } => {
                            // Pages migrate on first touch in the consuming
                            // kernel: the cost lands on the DESTINATION
                            // device's compute lane (lane 0), serializing
                            // with kernels — OCC cannot hide it.
                            for desc in plan.halo_descriptors(node_id) {
                                let (verdict, _) = consult(desc.dst);
                                let mut earliest = lanes[desc.src.0].max(lanes[desc.dst.0]);
                                let pages = desc.bytes.div_ceil(page_bytes);
                                let dur = SimTime::from_us(
                                    pages as f64 * fault_us
                                        + desc.bytes as f64 / bandwidth_gb_s * 1e-3,
                                );
                                if matches!(verdict, FaultVerdict::Escaped { .. }) {
                                    break;
                                }
                                if let FaultVerdict::Recovered { failed_attempts } = verdict {
                                    // Failed migrations repeat the sweep and
                                    // pay the backoff before the clean pass.
                                    if let Some(inj) = &injector {
                                        earliest = earliest
                                            + inj.policy().backoff_total(failed_attempts)
                                            + SimTime::from_us(
                                                dur.as_us() * failed_attempts as f64,
                                            );
                                    }
                                }
                                let stream = StreamId::new(desc.dst, 0);
                                let (_, e) = self.queue.enqueue_from(
                                    stream,
                                    earliest,
                                    dur,
                                    &self.um_names[node_id],
                                    SpanKind::Transfer,
                                );
                                report.transfer_time += dur;
                                lanes[ndev + desc.dst.0] = lanes[ndev + desc.dst.0].max(e);
                                lanes[2 * ndev + desc.src.0] = lanes[2 * ndev + desc.src.0].max(e);
                            }
                        }
                    }
                    for d in 0..ndev {
                        ends[node_id * ndev + d] = lanes[ndev + d].max(lanes[2 * ndev + d]);
                        if chunked {
                            // Consumers' boundary spans gate on arrivals
                            // only; `ends` keeps the conservative epoch
                            // meaning for every other consumer kind.
                            h_arrive[node_id * ndev + d] = lanes[ndev + d];
                        }
                    }
                    self.lane_scratch = lanes;
                }
                NodeKind::Host { .. } => {
                    // Host steps synchronize against every parent on every
                    // device, pay a sync + host overhead, and gate everyone.
                    let sync = self.backend.device(DeviceId(0)).sync_overhead();
                    let earliest = parents
                        .iter()
                        .flat_map(|&p| (0..ndev).map(move |d| p * ndev + d))
                        .map(|i| ends[i])
                        .fold(t0, SimTime::max);
                    let stream = StreamId::new(DeviceId(0), self.host_lane());
                    let (_, e) =
                        self.queue
                            .enqueue_from(stream, earliest, sync, &node.name, SpanKind::Host);
                    report.host_time += sync;
                    for d in 0..ndev {
                        ends[node_id * ndev + d] = e;
                    }
                }
                NodeKind::Collective { bytes, .. } => {
                    // Per-device readiness: a device joins the collective as
                    // soon as ITS parents are done — no global barrier.
                    let mut earliest = std::mem::take(&mut self.lane_scratch);
                    earliest.clear();
                    earliest.extend((0..ndev).map(|d| {
                        parents
                            .iter()
                            .map(|&p| ends[p * ndev + d])
                            .fold(t0, SimTime::max)
                    }));
                    let lane = self.collective_lane();
                    let timing = self.engine.schedule(
                        &mut self.queue,
                        CollectiveKind::AllReduce,
                        *bytes,
                        &earliest,
                        lane,
                        &node.name,
                    );
                    self.lane_scratch = earliest;
                    report.collective_time += timing.busy;
                    for d in 0..ndev {
                        ends[node_id * ndev + d] = timing.done[d];
                    }
                    // Link faults are observed inside the engine, chunk by
                    // chunk; if one escaped here, remember the node so the
                    // functional replay can abort before its finalize.
                    if self.escape_node.is_none()
                        && injector
                            .as_ref()
                            .and_then(|i| i.escape_site())
                            .is_some_and(|s| s.kind == FaultSiteKind::Link)
                    {
                        self.escape_node = Some(node_id);
                    }
                }
            }
            if injector.as_ref().is_some_and(|i| i.escape_site().is_some()) {
                // The iteration is aborting: the rest of it never runs, so
                // later operations must not advance the clock or consume
                // fault specs (the injector also stops matching once the
                // escape marker is set — this break just saves the work).
                break;
            }
        }

        self.ends_scratch = ends;
        self.dev_kernel_scratch = dev_kernel;
        self.halo_ready_scratch = h_ready;
        self.halo_arrive_scratch = h_arrive;
        self.halo_bytes_scratch = h_bytes;
        Ok(())
    }

    /// The functional half of one execution.
    fn replay_functional(&mut self, plan: &CompiledPlan) -> Result<(), ExecError> {
        match self.functional_mode {
            FunctionalMode::Serial => self.replay_functional_serial(plan),
            FunctionalMode::SpawnPerLaunch => self.replay_functional_spawn(plan),
            FunctionalMode::Parallel => {
                if self.parallel_halo_ok {
                    self.replay_functional_parallel(plan)
                } else {
                    // A whole-exchange halo cannot run concurrently with
                    // kernels (whole-partition leases); stay serial.
                    self.replay_functional_serial(plan)
                }
            }
        }
    }

    /// Reference replay: strictly in task order, devices in rank order,
    /// everything on the calling thread.
    fn replay_functional_serial(&self, plan: &CompiledPlan) -> Result<(), ExecError> {
        let ndev = self.backend.num_devices();
        for task in &plan.schedule().tasks {
            match &plan.graph().node(task.node).kind {
                NodeKind::Compute {
                    container,
                    view,
                    reduce_init,
                    reduce_finalize,
                } => {
                    if *reduce_init {
                        container.reduce_init();
                    }
                    for d in 0..ndev {
                        container.run_device(DeviceId(d), *view);
                    }
                    if *reduce_finalize {
                        container.reduce_finalize();
                    }
                }
                NodeKind::Halo { exchange } => exchange.execute(),
                NodeKind::Host { container } => container.run_host(),
                NodeKind::Collective { container, .. } => {
                    // Canonical rank-order fold: bit-identical to the
                    // host-staged merge regardless of algorithm.
                    container.reduce_finalize();
                }
            }
        }
        Ok(())
    }

    /// Historical replay: task order, but each launch spawns a fresh
    /// thread scope over the devices.
    fn replay_functional_spawn(&self, plan: &CompiledPlan) -> Result<(), ExecError> {
        let ndev = self.backend.num_devices();
        for task in &plan.schedule().tasks {
            match &plan.graph().node(task.node).kind {
                NodeKind::Compute {
                    container,
                    view,
                    reduce_init,
                    reduce_finalize,
                } => {
                    if *reduce_init {
                        container.reduce_init();
                    }
                    let view = *view;
                    // Borrow the container into the per-device threads
                    // (`Container: Sync`) — no per-launch clones.
                    std::thread::scope(|s| {
                        for d in 0..ndev {
                            s.spawn(move || container.run_device(DeviceId(d), view));
                        }
                    });
                    if *reduce_finalize {
                        container.reduce_finalize();
                    }
                }
                NodeKind::Halo { exchange } => exchange.execute(),
                NodeKind::Host { container } => container.run_host(),
                NodeKind::Collective { container, .. } => container.reduce_finalize(),
            }
        }
        Ok(())
    }

    /// Event-driven replay on the persistent worker pool.
    fn replay_functional_parallel(&mut self, plan: &CompiledPlan) -> Result<(), ExecError> {
        let ndev = self.devplan.ndev();
        // Take the pool out of `self` for the duration of the run: the
        // worker closure borrows `self`'s plan data immutably, and this
        // sidesteps both the borrow conflict and the old
        // `expect("pool was just created")`. If a worker panic unwinds
        // through `run`, the pool is dropped and respawned fresh next time.
        let pool = self.pool.take().unwrap_or_else(|| WorkerPool::new(ndev));
        self.func_epoch += 1;
        let epoch = self.func_epoch;
        self.events.clear_poison();

        let graph = plan.graph();
        let devplan: &DevicePlan = &self.devplan;
        let events = &self.events;
        // First structural error reported by a worker; later workers see
        // the poisoned events and abandon their walks.
        let first_error: Mutex<Option<ExecError>> = Mutex::new(None);
        pool.run(|d| {
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                walk_device(graph, devplan, events, epoch, d)
            }));
            match result {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    let mut slot = first_error.lock().unwrap_or_else(|p| p.into_inner());
                    slot.get_or_insert(e);
                    drop(slot);
                    // Wake the siblings out of their event waits so the
                    // pool drains instead of deadlocking.
                    events.poison();
                }
                Err(payload) => {
                    events.poison();
                    // Let the pool deliver the payload to the caller.
                    panic::resume_unwind(payload);
                }
            }
        });
        self.pool = Some(pool);
        match first_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Functional replay of the *prefix* of an iteration whose fault at
    /// `site` escaped retry: every operation before the faulted one runs
    /// (mutating data — this is what makes the rollback genuinely
    /// necessary), the faulted operation and everything after it never
    /// execute. Runs strictly serially regardless of the configured mode —
    /// the partial state is about to be wiped by a checkpoint restore, and
    /// a serial walk keeps the abort point deterministic.
    ///
    /// Occurrence counting mirrors the timing replay exactly: kernels
    /// count per device only when the partition is non-empty, halo
    /// transfers count once per (node, destination) in descriptor order.
    /// Link faults carry no functional counter: the engine observed them
    /// mid-collective, so the abort lands on the collective *node* the
    /// timing replay recorded (`escape_node`) — the fold never committed,
    /// skipping the whole node is exact.
    fn replay_functional_until(
        &self,
        plan: &CompiledPlan,
        site: FaultSite,
    ) -> Result<(), ExecError> {
        let ndev = self.backend.num_devices();
        // Per-device `[kernel, transfer]` occurrence counters.
        let mut seen = vec![[0u32; 2]; ndev];
        for task in &plan.schedule().tasks {
            match &plan.graph().node(task.node).kind {
                NodeKind::Compute {
                    container,
                    view,
                    reduce_init,
                    reduce_finalize,
                } => {
                    let space =
                        container
                            .space()
                            .ok_or_else(|| ExecError::MissingIterationSpace {
                                node: plan.graph().node(task.node).name.clone(),
                            })?;
                    if *reduce_init {
                        container.reduce_init();
                    }
                    for d in 0..ndev {
                        let dev = DeviceId(d);
                        if space.cell_count(dev, *view) == 0 {
                            continue; // the timing replay skipped it too
                        }
                        let nth = seen[d][0];
                        seen[d][0] += 1;
                        if site.kind == FaultSiteKind::Kernel
                            && site.device == dev
                            && site.nth == nth
                        {
                            // Launch-failure semantics: the faulted kernel
                            // never ran, devices before it in rank order
                            // already did.
                            return Ok(());
                        }
                        container.run_device(dev, *view);
                    }
                    if *reduce_finalize {
                        container.reduce_finalize();
                    }
                }
                NodeKind::Halo { exchange } => {
                    let mut counted = vec![false; ndev];
                    for desc in plan.halo_descriptors(task.node) {
                        if counted[desc.dst.0] {
                            continue;
                        }
                        counted[desc.dst.0] = true;
                        let nth = seen[desc.dst.0][1];
                        seen[desc.dst.0][1] += 1;
                        if site.kind == FaultSiteKind::Transfer
                            && site.device == desc.dst
                            && site.nth == nth
                        {
                            // The corrupted payload was dropped before
                            // commit: no destination of this exchange is
                            // updated.
                            return Ok(());
                        }
                    }
                    exchange.execute();
                }
                NodeKind::Host { container } => container.run_host(),
                NodeKind::Collective { container, .. } => {
                    if site.kind == FaultSiteKind::Link && self.escape_node == Some(task.node) {
                        // The collective aborted mid-flight: no rank holds
                        // the folded value, so the finalize (and everything
                        // after) never runs.
                        return Ok(());
                    }
                    container.reduce_finalize();
                }
            }
        }
        // The site was not reached — counters drifted from the timing
        // replay, which is a bug; the caller still rolls back, so data
        // stays consistent, but surface it loudly in debug builds.
        debug_assert!(false, "escape site {site:?} not found in functional replay");
        Ok(())
    }

    /// Execute the plan `n` times, aggregating the report.
    ///
    /// Individual iteration makespans are recorded and readable via
    /// [`Executor::per_iteration_makespans`] until the next call.
    ///
    /// When tracing, asserts (debug builds) that each iteration emits the
    /// same number of spans — the compiled schedule is replayed verbatim,
    /// so a drifting span count means the executor grew hidden state.
    pub fn execute_iters(&mut self, n: usize) -> ExecReport {
        let mut total = ExecReport::default();
        let mut spans_per_iter: Option<usize> = None;
        // Reserve up front so the steady-state loop never reallocates.
        self.iter_makespans.clear();
        self.iter_makespans.reserve(n);
        for _ in 0..n {
            let before = self.queue.trace().map(|t| t.spans().len());
            let report = self.execute();
            self.iter_makespans.push(report.makespan);
            total.accumulate(report);
            // With a fault injector installed the span count legitimately
            // varies per iteration (retry spans appear where faults fire),
            // so the stability check only applies to clean runs.
            if self.injector.is_some() {
                continue;
            }
            if let (Some(b), Some(t)) = (before, self.queue.trace()) {
                let delta = t.spans().len() - b;
                if let Some(expected) = spans_per_iter {
                    debug_assert_eq!(
                        expected, delta,
                        "trace span count must be stable across iterations"
                    );
                }
                spans_per_iter = Some(delta);
            }
        }
        total
    }

    /// [`Executor::execute_iters`], stopping at the first failure.
    pub fn try_execute_iters(&mut self, n: usize) -> Result<ExecReport, ExecError> {
        let mut total = ExecReport::default();
        self.iter_makespans.clear();
        self.iter_makespans.reserve(n);
        for _ in 0..n {
            let report = self.try_execute()?;
            self.iter_makespans.push(report.makespan);
            total.accumulate(report);
        }
        Ok(total)
    }
}

/// One worker's walk over its device's step list: wait on the event table
/// where the plan says to, execute, signal. A malformed step is reported
/// as an error (the worker stores it and poisons the replay) rather than
/// panicking through the pool.
fn walk_device(
    graph: &Graph,
    dp: &DevicePlan,
    events: &EventSlots,
    epoch: u64,
    d: usize,
) -> Result<(), ExecError> {
    let ndev = dp.ndev();
    for step in dp.steps(d) {
        for &w in dp.waits_of(step) {
            if !events.wait(w as usize, epoch) {
                // Poisoned: a sibling worker failed and is reporting the
                // root cause; abandon the walk quietly.
                return Ok(());
            }
        }
        let node_id = step.node as usize;
        let node = graph.node(node_id);
        let missing = || ExecError::MissingContainer {
            node: node.name.clone(),
        };
        let malformed = || ExecError::MalformedStep {
            node: node.name.clone(),
        };
        match step.action {
            DevAction::ReduceInit => {
                let c = node.container().ok_or_else(missing)?;
                c.reduce_init();
                events.signal(dp.aux_init(node_id), epoch);
            }
            DevAction::Kernel => {
                match &node.kind {
                    NodeKind::Compute {
                        container, view, ..
                    } => container.run_device(DeviceId(d), *view),
                    _ => return Err(malformed()),
                }
                events.signal(dp.slot(node_id, d), epoch);
            }
            DevAction::HaloPull => {
                match &node.kind {
                    NodeKind::Halo { exchange } => exchange.execute_for_dst(DeviceId(d)),
                    _ => return Err(malformed()),
                }
                events.signal(dp.slot(node_id, d), epoch);
                // A chunked plan's consumers wait per-chunk arrival slots;
                // the pull signals them all once the payload landed — the
                // same ordering the whole-pull slot enforced, expressed at
                // chunk granularity.
                for k in 0..dp.chunk_count(node_id) {
                    events.signal(dp.chunk_slot(node_id, d, k), epoch);
                }
            }
            DevAction::HaloAll => {
                match &node.kind {
                    NodeKind::Halo { exchange } => exchange.execute(),
                    _ => return Err(malformed()),
                }
                for e in 0..ndev {
                    events.signal(dp.slot(node_id, e), epoch);
                    for k in 0..dp.chunk_count(node_id) {
                        events.signal(dp.chunk_slot(node_id, e, k), epoch);
                    }
                }
            }
            DevAction::Host => {
                let c = node.container().ok_or_else(missing)?;
                c.run_host();
                events.signal(dp.aux_done(node_id), epoch);
            }
            DevAction::Collective | DevAction::ReduceFinalize => {
                let c = node.container().ok_or_else(missing)?;
                c.reduce_finalize();
                events.signal(dp.aux_done(node_id), epoch);
            }
        }
    }
    Ok(())
}
