//! Executing a compiled plan.
//!
//! The executor holds an immutable, shareable [`CompiledPlan`] and splits
//! every execution into two replays:
//!
//! * **Virtual-timing replay** ([`Executor::execute`]'s first half) —
//!   enqueues every task on the owning stream of the
//!   [`neon_sys::QueueSim`] virtual clock: kernels cost
//!   `launch + bytes/bandwidth` (roofline), halo transfers cost
//!   `latency + bytes/link-bandwidth` per segment on dedicated per-device
//!   transfer lanes (one per direction, modelling a GPU's copy engines),
//!   host steps synchronize all devices. Every overlap the schedule
//!   enables shows up as reduced makespan — this is how the paper's OCC
//!   figures are reproduced without hardware.
//!
//! * **Functional replay** — actually runs the compute lambdas over the
//!   partition data. In the default [`FunctionalMode::Parallel`] mode a
//!   persistent per-device [`neon_sys::WorkerPool`] walks the compiled
//!   [`DevicePlan`]: each worker executes *its* device's steps in schedule
//!   order and synchronizes with the other workers through atomic event
//!   slots exactly where the event table says to wait — so internal
//!   kernels, boundary kernels and halo copies really overlap on the host,
//!   mirroring the virtual-clock model (paper §IV-D). The
//!   [`FunctionalMode::Serial`] reference walks tasks strictly in order on
//!   the calling thread; parity tests pin the two bit for bit.
//!
//! Tasks, nodes, parent lists, halo descriptors and the event table are
//! *borrowed from the plan by index* — the hot loop clones nothing per
//! task and allocates nothing in steady state; the per-node
//! completion-time table is a flat scratch buffer reused across
//! iterations.
//!
//! Event semantics are per-device: a kernel on device *d* waits for its
//! data parents on *d*; a halo transfer waits for its sources' and
//! destination's parents; a host step waits for everything.

#![allow(clippy::needless_range_loop)] // device loops index per-device tables

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use neon_comm::{CollectiveEngine, CollectiveKind, EngineConfig};
use neon_sys::{Backend, DeviceId, QueueSim, SimTime, SpanKind, StreamId, Trace, WorkerPool};

use crate::collective::CollectiveMode;
use crate::devplan::{DevAction, DevicePlan};
use crate::graph::{Graph, NodeKind};
use crate::plan::CompiledPlan;
use crate::schedule::Schedule;

/// How halo coherency is realized (paper §IV-C2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HaloPolicy {
    /// Explicit peer-to-peer copies on dedicated transfer lanes — the
    /// model the paper's grids use, and the one OCC can overlap.
    ExplicitTransfers,
    /// Driver-managed unified memory: remote pages migrate on first
    /// touch *inside* the consuming kernel, so migration time serializes
    /// with computation on the device's compute lane and no overlap is
    /// possible — the performance penalty the paper cites for rejecting
    /// this design.
    UnifiedMemory {
        /// Migration page size in bytes (2 MiB on modern GPUs).
        page_bytes: u64,
        /// Fault-handling latency per page group, in µs.
        fault_us: f64,
        /// Sustained migration bandwidth, in GB/s.
        bandwidth_gb_s: f64,
    },
}

impl HaloPolicy {
    /// The unified-memory model with typical NVLink-system parameters.
    pub fn unified_default() -> Self {
        HaloPolicy::UnifiedMemory {
            page_bytes: 2 << 20,
            fault_us: 25.0,
            bandwidth_gb_s: 50.0,
        }
    }
}

/// How the functional replay runs the compute lambdas on host threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FunctionalMode {
    /// Walk tasks strictly in schedule order on the calling thread: the
    /// bit-exactness reference.
    Serial,
    /// One `std::thread::scope` per kernel launch (the historical
    /// behavior): per-device parallelism inside a launch, a full
    /// spawn/join round trip per launch, no cross-task overlap.
    SpawnPerLaunch,
    /// Event-driven replay on a persistent per-device worker pool walking
    /// the compiled [`DevicePlan`] — cross-task overlap exactly where the
    /// event table allows it, no thread spawns in steady state.
    #[default]
    Parallel,
}

/// Timing summary of one or more executions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecReport {
    /// Wall-clock (virtual) time from first enqueue to last completion.
    pub makespan: SimTime,
    /// Total kernel busy time summed over all streams and devices.
    pub kernel_time: SimTime,
    /// Total transfer busy time summed over all lanes.
    pub transfer_time: SimTime,
    /// Total host-step time.
    pub host_time: SimTime,
    /// Total collective-communication busy time over all lanes.
    pub collective_time: SimTime,
    /// Kernel launches enqueued (one per compute node per device with a
    /// non-empty partition; fusion shrinks this).
    pub launches: u64,
    /// Bytes swept by those kernels (cells × the container's per-cell
    /// bytes, summed over launches; fused reads of just-written fields
    /// count zero).
    pub bytes_moved: u64,
    /// Number of executions aggregated.
    pub executions: u64,
}

impl ExecReport {
    fn accumulate(&mut self, other: ExecReport) {
        self.makespan += other.makespan;
        self.kernel_time += other.kernel_time;
        self.transfer_time += other.transfer_time;
        self.host_time += other.host_time;
        self.collective_time += other.collective_time;
        self.launches += other.launches;
        self.bytes_moved += other.bytes_moved;
        self.executions += other.executions;
    }

    /// Average makespan per execution.
    ///
    /// Every execution ends with a [`neon_sys::QueueSim::sync_all`] — a
    /// zero-cost *alignment barrier* on the virtual clock that raises all
    /// streams to the global maximum. Because of that barrier, successive
    /// iterations cannot overlap on the virtual clock, the summed
    /// `makespan` is exactly the sum of the individual iteration
    /// makespans, and this average is exact — but it also flattens any
    /// per-iteration variance. Use
    /// [`Executor::per_iteration_makespans`] when the distribution
    /// matters.
    pub fn time_per_execution(&self) -> SimTime {
        if self.executions == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_us(self.makespan.as_us() / self.executions as f64)
        }
    }
}

/// Iterations a waiter spins before parking on the condvar. Kept small:
/// slots signaled microseconds apart are caught cheaply, anything longer
/// parks instead of burning a core (which on an oversubscribed host would
/// steal cycles from the very worker being waited for).
const WAIT_SPIN: usize = 64;

/// The event table of the parallel functional replay: one atomic epoch
/// counter per [`DevicePlan`] slot.
///
/// A slot stores the executor epoch in which it was last signaled; a
/// waiter for epoch `e` proceeds once the slot holds `>= e`. Nothing is
/// ever cleared — bumping the epoch invalidates all slots at once, which
/// also makes slots left behind by a panicked (poisoned) replay harmless.
struct EventSlots {
    slots: Vec<AtomicU64>,
    lock: Mutex<()>,
    cv: Condvar,
    poisoned: AtomicBool,
}

impl EventSlots {
    fn new(n: usize) -> Self {
        EventSlots {
            slots: (0..n).map(|_| AtomicU64::new(0)).collect(),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn signal(&self, slot: usize, epoch: u64) {
        self.slots[slot].store(epoch, Ordering::Release);
        // The empty critical section pairs with the waiter's
        // check-then-wait under the same lock: no lost wakeups.
        drop(self.lock.lock().unwrap());
        self.cv.notify_all();
    }

    /// Wait until `slot` reaches `epoch`. Returns false if the replay was
    /// poisoned by a panicking worker — the caller must abandon its walk.
    fn wait(&self, slot: usize, epoch: u64) -> bool {
        for _ in 0..WAIT_SPIN {
            if self.slots[slot].load(Ordering::Acquire) >= epoch {
                return true;
            }
            if self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().unwrap();
        loop {
            if self.slots[slot].load(Ordering::Acquire) >= epoch {
                return true;
            }
            if self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            // The timeout is belt-and-braces only; the signal-side lock
            // bracket already rules out lost wakeups.
            let (g, _) = self
                .cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
            guard = g;
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        drop(self.lock.lock().unwrap());
        self.cv.notify_all();
    }

    fn clear_poison(&self) {
        self.poisoned.store(false, Ordering::Release);
    }
}

/// Replays a compiled plan on the virtual clock and (optionally) the real
/// data.
pub struct Executor {
    backend: Backend,
    plan: Arc<CompiledPlan>,
    queue: QueueSim,
    compute_streams: usize,
    functional: bool,
    functional_mode: FunctionalMode,
    kernel_concurrency: bool,
    halo_policy: HaloPolicy,
    engine: CollectiveEngine,
    collective_mode: CollectiveMode,
    /// The plan's per-device task partition + event table.
    devplan: Arc<DevicePlan>,
    /// Persistent per-device workers, spawned on the first parallel
    /// functional replay and parked between jobs.
    pool: Option<WorkerPool>,
    /// Event slots backing the parallel replay, sized to the device plan.
    events: EventSlots,
    /// Current replay epoch (bumped once per parallel functional replay).
    func_epoch: u64,
    /// Whether every halo exchange supports per-device execution — if not,
    /// the parallel replay falls back to the serial reference (a
    /// whole-exchange `execute()` takes whole-partition leases that would
    /// falsely conflict with overlapping internal kernels).
    parallel_halo_ok: bool,
    /// Precomputed `"<name>(um)"` span labels, one per node (empty for
    /// non-halo nodes), so the unified-memory path formats nothing per
    /// descriptor per iteration.
    um_names: Vec<String>,
    /// Per-iteration makespans of the most recent `execute_iters` call.
    iter_makespans: Vec<SimTime>,
    /// Flat `node × device` completion-time table, reused across
    /// executions.
    ends_scratch: Vec<SimTime>,
    /// Per-device staging buffer for halo/collective readiness times,
    /// reused across tasks.
    lane_scratch: Vec<SimTime>,
}

impl Executor {
    /// Build an executor over an already-built graph and schedule
    /// (compatibility path; the skeleton uses [`Executor::from_plan`]).
    pub fn new(backend: Backend, graph: Graph, schedule: Schedule) -> Self {
        Self::from_plan(backend, CompiledPlan::from_parts(graph, schedule))
    }

    /// Build an executor over a shared compiled plan. Functional execution
    /// is enabled iff every compute node's iteration space has real
    /// storage.
    pub fn from_plan(backend: Backend, plan: Arc<CompiledPlan>) -> Self {
        let compute_streams = plan.schedule().num_streams;
        // lanes: [0, compute_streams) kernels, +0/+1 transfers, +2 host,
        // +3 collectives.
        let queue = QueueSim::new(backend.num_devices(), compute_streams + 4);
        let engine = CollectiveEngine::new(backend.topology().clone());
        let functional = plan.graph().nodes().iter().all(|n| match &n.kind {
            NodeKind::Compute { container, .. } => container
                .space()
                .map(|s| s.supports_functional())
                .unwrap_or(true),
            _ => true,
        });
        let parallel_halo_ok = plan.graph().nodes().iter().all(|n| match &n.kind {
            NodeKind::Halo { exchange } => exchange.supports_per_device(),
            _ => true,
        });
        let um_names = plan
            .graph()
            .nodes()
            .iter()
            .map(|n| {
                if n.is_halo() {
                    format!("{}(um)", n.name)
                } else {
                    String::new()
                }
            })
            .collect();
        let devplan = Arc::clone(plan.device_plan());
        let events = EventSlots::new(devplan.num_slots());
        Executor {
            backend,
            plan,
            queue,
            compute_streams,
            functional,
            functional_mode: FunctionalMode::default(),
            kernel_concurrency: false,
            halo_policy: HaloPolicy::ExplicitTransfers,
            engine,
            collective_mode: CollectiveMode::default(),
            devplan,
            pool: None,
            events,
            func_epoch: 0,
            parallel_halo_ok,
            um_names,
            iter_makespans: Vec::new(),
            ends_scratch: Vec::new(),
            lane_scratch: Vec::new(),
        }
    }

    /// The plan this executor replays.
    pub fn plan(&self) -> &Arc<CompiledPlan> {
        &self.plan
    }

    /// Select the halo coherency model (see [`HaloPolicy`]).
    pub fn set_halo_policy(&mut self, policy: HaloPolicy) {
        self.halo_policy = policy;
    }

    /// Select how collective nodes pick their algorithm (default:
    /// [`CollectiveMode::Auto`]).
    pub fn set_collective_mode(&mut self, mode: CollectiveMode) {
        self.collective_mode = mode;
        self.engine = CollectiveEngine::with_config(
            self.backend.topology().clone(),
            EngineConfig {
                algorithm: mode.fixed_algorithm(),
                ..EngineConfig::default()
            },
        );
    }

    /// The virtual-clock simulator (link utilization counters live here).
    pub fn queue(&self) -> &QueueSim {
        &self.queue
    }

    /// Let kernels of different streams run concurrently at full modelled
    /// bandwidth each.
    ///
    /// Off by default: the applications here are memory-bound, and a real
    /// GPU's bandwidth is shared between concurrent kernels, so the
    /// faithful model serializes a device's kernels on one lane (transfers
    /// keep their own DMA lanes). Enabling this reproduces the unphysical
    /// super-linear efficiencies the ablation demonstrates.
    pub fn set_kernel_concurrency(&mut self, on: bool) {
        self.kernel_concurrency = on;
    }

    /// Whether kernels actually run on data (vs. timing-only).
    pub fn is_functional(&self) -> bool {
        self.functional
    }

    /// Force timing-only execution (used by large benchmark sweeps).
    pub fn set_functional(&mut self, on: bool) {
        assert!(
            !on || self.plan.graph().nodes().iter().all(|n| match &n.kind {
                NodeKind::Compute { container, .. } => container
                    .space()
                    .map(|s| s.supports_functional())
                    .unwrap_or(true),
                _ => true,
            }),
            "cannot enable functional execution on virtual storage"
        );
        self.functional = on;
    }

    /// Select how the functional replay parallelizes (default:
    /// [`FunctionalMode::Parallel`]).
    pub fn set_functional_mode(&mut self, mode: FunctionalMode) {
        self.functional_mode = mode;
    }

    /// The current functional replay mode.
    pub fn functional_mode(&self) -> FunctionalMode {
        self.functional_mode
    }

    /// Makespans of the individual iterations of the most recent
    /// [`Executor::execute_iters`] call, in order.
    ///
    /// [`ExecReport::time_per_execution`] only exposes the mean; this is
    /// the full per-iteration distribution for variance reporting.
    pub fn per_iteration_makespans(&self) -> &[SimTime] {
        &self.iter_makespans
    }

    /// Enable span recording on the virtual clock.
    pub fn enable_trace(&mut self) {
        self.queue.enable_trace();
    }

    /// Take the recorded trace (if tracing was enabled).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.queue.take_trace()
    }

    fn transfer_lane(&self, src: DeviceId, dst: DeviceId) -> usize {
        self.compute_streams + usize::from(dst.0 < src.0)
    }

    fn host_lane(&self) -> usize {
        self.compute_streams + 2
    }

    fn collective_lane(&self) -> usize {
        self.compute_streams + 3
    }

    /// Execute the plan once: the virtual-timing replay, then (when
    /// functional) the functional replay in the configured mode.
    pub fn execute(&mut self) -> ExecReport {
        // Clone the Arc so plan data can be borrowed by index while the
        // queue (and scratch) are mutated — nothing inside is copied.
        let plan = Arc::clone(&self.plan);
        let t0 = self.queue.makespan();
        let mut report = ExecReport {
            executions: 1,
            ..Default::default()
        };
        self.replay_timing(&plan, t0, &mut report);
        if self.functional {
            self.replay_functional(&plan);
        }

        // Align all streams at the end of one execution so iterations
        // measure cleanly (a zero-cost barrier on the virtual clock).
        let end = self.queue.sync_all();
        report.makespan = end - t0;
        if self.queue.trace().is_some() {
            let topo = self.backend.topology();
            let stats: Vec<(String, f64, u64)> = (0..topo.num_link_resources())
                .map(|r| {
                    (
                        topo.link_resource_name(r).to_string(),
                        self.queue.link_busy_time(r).as_us(),
                        self.queue.link_contention_events(r),
                    )
                })
                .collect();
            let (launches, kernel_bytes) = (
                self.queue.kernel_launches(),
                self.queue.kernel_bytes_moved(),
            );
            if let Some(trace) = self.queue.trace_mut() {
                for (name, busy, contended) in stats {
                    trace.set_counter(&format!("link:{name}:busy_us"), busy);
                    trace.set_counter(&format!("link:{name}:contended"), contended as f64);
                }
                trace.set_counter("kernel:launches", launches as f64);
                trace.set_counter("kernel:bytes_moved", kernel_bytes as f64);
            }
        }
        report
    }

    /// The virtual-clock half of one execution.
    fn replay_timing(&mut self, plan: &CompiledPlan, t0: SimTime, report: &mut ExecReport) {
        let graph = plan.graph();
        let schedule = plan.schedule();
        let ndev = self.backend.num_devices();
        // Completion time of each node on each device, flat `node × dev`.
        let mut ends = std::mem::take(&mut self.ends_scratch);
        ends.clear();
        ends.resize(graph.len() * ndev, t0);

        for task in &schedule.tasks {
            let node_id = task.node;
            let node = graph.node(node_id);
            let parents = plan.data_parents(node_id);

            match &node.kind {
                NodeKind::Compute {
                    container,
                    view,
                    reduce_finalize,
                    ..
                } => {
                    let space = container
                        .space()
                        .expect("compute node has an iteration space");
                    let bytes_per_cell = container.bytes_per_cell();
                    let flops_per_cell = container.flops_per_cell();
                    let eff = container.bw_efficiency();
                    for d in 0..ndev {
                        let dev = DeviceId(d);
                        let earliest = parents
                            .iter()
                            .map(|&p| ends[p * ndev + d])
                            .fold(t0, SimTime::max);
                        let cells = space.cell_count(dev, *view);
                        if cells == 0 {
                            ends[node_id * ndev + d] = earliest;
                            continue;
                        }
                        let dur = self.backend.device(dev).kernel_time(
                            cells * bytes_per_cell,
                            cells * flops_per_cell,
                            eff,
                        );
                        let lane = if self.kernel_concurrency {
                            task.stream
                        } else {
                            0
                        };
                        let stream = StreamId::new(dev, lane);
                        let (_, e) = self.queue.enqueue_from(
                            stream,
                            earliest,
                            dur,
                            &node.name,
                            SpanKind::Kernel,
                        );
                        report.kernel_time += dur;
                        report.launches += 1;
                        report.bytes_moved += cells * bytes_per_cell;
                        self.queue.record_launch(cells * bytes_per_cell);
                        ends[node_id * ndev + d] = e;
                    }
                    if *reduce_finalize {
                        // Folding partials into the host value synchronizes
                        // the devices and pays a host round trip.
                        let sync = self.backend.device(DeviceId(0)).sync_overhead();
                        let gmax = (0..ndev)
                            .map(|d| ends[node_id * ndev + d])
                            .fold(t0, SimTime::max)
                            + sync;
                        report.host_time += sync;
                        for d in 0..ndev {
                            ends[node_id * ndev + d] = gmax;
                        }
                    }
                }
                NodeKind::Halo { .. } => {
                    // lanes = [constraint | into | from], each `ndev` wide.
                    let mut lanes = std::mem::take(&mut self.lane_scratch);
                    lanes.clear();
                    lanes.resize(3 * ndev, t0);
                    for d in 0..ndev {
                        let c = parents
                            .iter()
                            .map(|&p| ends[p * ndev + d])
                            .fold(t0, SimTime::max);
                        lanes[d] = c;
                        lanes[ndev + d] = c;
                        lanes[2 * ndev + d] = c;
                    }
                    match self.halo_policy {
                        HaloPolicy::ExplicitTransfers => {
                            for desc in plan.halo_descriptors(node_id) {
                                let earliest = lanes[desc.src.0].max(lanes[desc.dst.0]);
                                let lane = self.transfer_lane(desc.src, desc.dst);
                                let dur = self
                                    .backend
                                    .topology()
                                    .transfer_time(desc.src, desc.dst, desc.bytes);
                                // Occupy the physical link: peer copies on a
                                // PCIe box all contend for the host root
                                // complex; NVLink pairs are dedicated.
                                let res =
                                    self.backend.topology().link_resources(desc.src, desc.dst);
                                let stream = StreamId::new(desc.src, lane);
                                let (s, e) = self.queue.enqueue_transfer(
                                    stream,
                                    earliest,
                                    dur,
                                    res,
                                    &node.name,
                                    SpanKind::Transfer,
                                );
                                report.transfer_time += e - s;
                                lanes[ndev + desc.dst.0] = lanes[ndev + desc.dst.0].max(e);
                                lanes[2 * ndev + desc.src.0] = lanes[2 * ndev + desc.src.0].max(e);
                            }
                        }
                        HaloPolicy::UnifiedMemory {
                            page_bytes,
                            fault_us,
                            bandwidth_gb_s,
                        } => {
                            // Pages migrate on first touch in the consuming
                            // kernel: the cost lands on the DESTINATION
                            // device's compute lane (lane 0), serializing
                            // with kernels — OCC cannot hide it.
                            for desc in plan.halo_descriptors(node_id) {
                                let earliest = lanes[desc.src.0].max(lanes[desc.dst.0]);
                                let pages = desc.bytes.div_ceil(page_bytes);
                                let dur = SimTime::from_us(
                                    pages as f64 * fault_us
                                        + desc.bytes as f64 / bandwidth_gb_s * 1e-3,
                                );
                                let stream = StreamId::new(desc.dst, 0);
                                let (_, e) = self.queue.enqueue_from(
                                    stream,
                                    earliest,
                                    dur,
                                    &self.um_names[node_id],
                                    SpanKind::Transfer,
                                );
                                report.transfer_time += dur;
                                lanes[ndev + desc.dst.0] = lanes[ndev + desc.dst.0].max(e);
                                lanes[2 * ndev + desc.src.0] = lanes[2 * ndev + desc.src.0].max(e);
                            }
                        }
                    }
                    for d in 0..ndev {
                        ends[node_id * ndev + d] = lanes[ndev + d].max(lanes[2 * ndev + d]);
                    }
                    self.lane_scratch = lanes;
                }
                NodeKind::Host { .. } => {
                    // Host steps synchronize against every parent on every
                    // device, pay a sync + host overhead, and gate everyone.
                    let sync = self.backend.device(DeviceId(0)).sync_overhead();
                    let earliest = parents
                        .iter()
                        .flat_map(|&p| (0..ndev).map(move |d| p * ndev + d))
                        .map(|i| ends[i])
                        .fold(t0, SimTime::max);
                    let stream = StreamId::new(DeviceId(0), self.host_lane());
                    let (_, e) =
                        self.queue
                            .enqueue_from(stream, earliest, sync, &node.name, SpanKind::Host);
                    report.host_time += sync;
                    for d in 0..ndev {
                        ends[node_id * ndev + d] = e;
                    }
                }
                NodeKind::Collective { bytes, .. } => {
                    // Per-device readiness: a device joins the collective as
                    // soon as ITS parents are done — no global barrier.
                    let mut earliest = std::mem::take(&mut self.lane_scratch);
                    earliest.clear();
                    earliest.extend((0..ndev).map(|d| {
                        parents
                            .iter()
                            .map(|&p| ends[p * ndev + d])
                            .fold(t0, SimTime::max)
                    }));
                    let lane = self.collective_lane();
                    let timing = self.engine.schedule(
                        &mut self.queue,
                        CollectiveKind::AllReduce,
                        *bytes,
                        &earliest,
                        lane,
                        &node.name,
                    );
                    self.lane_scratch = earliest;
                    report.collective_time += timing.busy;
                    for d in 0..ndev {
                        ends[node_id * ndev + d] = timing.done[d];
                    }
                }
            }
        }

        self.ends_scratch = ends;
    }

    /// The functional half of one execution.
    fn replay_functional(&mut self, plan: &CompiledPlan) {
        match self.functional_mode {
            FunctionalMode::Serial => self.replay_functional_serial(plan),
            FunctionalMode::SpawnPerLaunch => self.replay_functional_spawn(plan),
            FunctionalMode::Parallel => {
                if self.parallel_halo_ok {
                    self.replay_functional_parallel(plan);
                } else {
                    // A whole-exchange halo cannot run concurrently with
                    // kernels (whole-partition leases); stay serial.
                    self.replay_functional_serial(plan);
                }
            }
        }
    }

    /// Reference replay: strictly in task order, devices in rank order,
    /// everything on the calling thread.
    fn replay_functional_serial(&self, plan: &CompiledPlan) {
        let ndev = self.backend.num_devices();
        for task in &plan.schedule().tasks {
            match &plan.graph().node(task.node).kind {
                NodeKind::Compute {
                    container,
                    view,
                    reduce_init,
                    reduce_finalize,
                } => {
                    if *reduce_init {
                        container.reduce_init();
                    }
                    for d in 0..ndev {
                        container.run_device(DeviceId(d), *view);
                    }
                    if *reduce_finalize {
                        container.reduce_finalize();
                    }
                }
                NodeKind::Halo { exchange } => exchange.execute(),
                NodeKind::Host { container } => container.run_host(),
                NodeKind::Collective { container, .. } => {
                    // Canonical rank-order fold: bit-identical to the
                    // host-staged merge regardless of algorithm.
                    container.reduce_finalize();
                }
            }
        }
    }

    /// Historical replay: task order, but each launch spawns a fresh
    /// thread scope over the devices.
    fn replay_functional_spawn(&self, plan: &CompiledPlan) {
        let ndev = self.backend.num_devices();
        for task in &plan.schedule().tasks {
            match &plan.graph().node(task.node).kind {
                NodeKind::Compute {
                    container,
                    view,
                    reduce_init,
                    reduce_finalize,
                } => {
                    if *reduce_init {
                        container.reduce_init();
                    }
                    let view = *view;
                    // Borrow the container into the per-device threads
                    // (`Container: Sync`) — no per-launch clones.
                    std::thread::scope(|s| {
                        for d in 0..ndev {
                            s.spawn(move || container.run_device(DeviceId(d), view));
                        }
                    });
                    if *reduce_finalize {
                        container.reduce_finalize();
                    }
                }
                NodeKind::Halo { exchange } => exchange.execute(),
                NodeKind::Host { container } => container.run_host(),
                NodeKind::Collective { container, .. } => container.reduce_finalize(),
            }
        }
    }

    /// Event-driven replay on the persistent worker pool.
    fn replay_functional_parallel(&mut self, plan: &CompiledPlan) {
        let ndev = self.devplan.ndev();
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::new(ndev));
        }
        self.func_epoch += 1;
        let epoch = self.func_epoch;
        self.events.clear_poison();

        let graph = plan.graph();
        let devplan: &DevicePlan = &self.devplan;
        let events = &self.events;
        let pool = self.pool.as_ref().expect("pool was just created");
        pool.run(|d| {
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                walk_device(graph, devplan, events, epoch, d);
            }));
            if let Err(payload) = result {
                // Wake every sibling worker out of its event waits so the
                // pool drains instead of deadlocking, then let the pool
                // deliver the payload to the caller.
                events.poison();
                panic::resume_unwind(payload);
            }
        });
    }

    /// Execute the plan `n` times, aggregating the report.
    ///
    /// Individual iteration makespans are recorded and readable via
    /// [`Executor::per_iteration_makespans`] until the next call.
    ///
    /// When tracing, asserts (debug builds) that each iteration emits the
    /// same number of spans — the compiled schedule is replayed verbatim,
    /// so a drifting span count means the executor grew hidden state.
    pub fn execute_iters(&mut self, n: usize) -> ExecReport {
        let mut total = ExecReport::default();
        let mut spans_per_iter: Option<usize> = None;
        // Reserve up front so the steady-state loop never reallocates.
        self.iter_makespans.clear();
        self.iter_makespans.reserve(n);
        for _ in 0..n {
            let before = self.queue.trace().map(|t| t.spans().len());
            let report = self.execute();
            self.iter_makespans.push(report.makespan);
            total.accumulate(report);
            if let (Some(b), Some(t)) = (before, self.queue.trace()) {
                let delta = t.spans().len() - b;
                if let Some(expected) = spans_per_iter {
                    debug_assert_eq!(
                        expected, delta,
                        "trace span count must be stable across iterations"
                    );
                }
                spans_per_iter = Some(delta);
            }
        }
        total
    }
}

/// One worker's walk over its device's step list: wait on the event table
/// where the plan says to, execute, signal.
fn walk_device(graph: &Graph, dp: &DevicePlan, events: &EventSlots, epoch: u64, d: usize) {
    let ndev = dp.ndev();
    for step in dp.steps(d) {
        for &w in dp.waits_of(step) {
            if !events.wait(w as usize, epoch) {
                return; // poisoned: a sibling worker panicked
            }
        }
        let node_id = step.node as usize;
        let node = graph.node(node_id);
        match step.action {
            DevAction::ReduceInit => {
                let c = node.container().expect("reduce node has a container");
                c.reduce_init();
                events.signal(dp.aux_init(node_id), epoch);
            }
            DevAction::Kernel => {
                match &node.kind {
                    NodeKind::Compute {
                        container, view, ..
                    } => container.run_device(DeviceId(d), *view),
                    _ => unreachable!("kernel step on a non-compute node"),
                }
                events.signal(dp.slot(node_id, d), epoch);
            }
            DevAction::HaloPull => {
                match &node.kind {
                    NodeKind::Halo { exchange } => exchange.execute_for_dst(DeviceId(d)),
                    _ => unreachable!("halo step on a non-halo node"),
                }
                events.signal(dp.slot(node_id, d), epoch);
            }
            DevAction::HaloAll => {
                match &node.kind {
                    NodeKind::Halo { exchange } => exchange.execute(),
                    _ => unreachable!("halo step on a non-halo node"),
                }
                for e in 0..ndev {
                    events.signal(dp.slot(node_id, e), epoch);
                }
            }
            DevAction::Host => {
                let c = node.container().expect("host node has a container");
                c.run_host();
                events.signal(dp.aux_done(node_id), epoch);
            }
            DevAction::Collective | DevAction::ReduceFinalize => {
                let c = node.container().expect("reduce node has a container");
                c.reduce_finalize();
                events.signal(dp.aux_done(node_id), epoch);
            }
        }
    }
}
