//! Executing a scheduled multi-GPU graph.
//!
//! The executor does two things for every task of the plan:
//!
//! * **Virtual timing** — enqueues the operation on the owning stream of
//!   the [`neon_sys::QueueSim`] virtual clock: kernels cost
//!   `launch + bytes/bandwidth` (roofline), halo transfers cost
//!   `latency + bytes/link-bandwidth` per segment on dedicated per-device
//!   transfer lanes (one per direction, modelling a GPU's copy engines),
//!   host steps synchronize all devices. Every overlap the schedule
//!   enables shows up as reduced makespan — this is how the paper's OCC
//!   figures are reproduced without hardware.
//!
//! * **Functional execution** — actually runs the compute lambdas over the
//!   partition data (one OS thread per device, disjoint partitions),
//!   executes halo copies, reduce folds and host steps, in task order.
//!   Skipped automatically when the grid uses virtual (timing-only)
//!   storage.
//!
//! Event semantics are per-device: a kernel on device *d* waits for its
//! data parents on *d*; a halo transfer waits for its source's and
//! destination's parents; a host step waits for everything.

#![allow(clippy::needless_range_loop)] // device loops index per-device tables

use neon_comm::{CollectiveEngine, CollectiveKind, EngineConfig};
use neon_sys::{Backend, DeviceId, QueueSim, SimTime, SpanKind, StreamId, Trace};

use crate::collective::CollectiveMode;
use crate::graph::{Graph, NodeId, NodeKind};
use crate::schedule::Schedule;

/// How halo coherency is realized (paper §IV-C2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HaloPolicy {
    /// Explicit peer-to-peer copies on dedicated transfer lanes — the
    /// model the paper's grids use, and the one OCC can overlap.
    ExplicitTransfers,
    /// Driver-managed unified memory: remote pages migrate on first
    /// touch *inside* the consuming kernel, so migration time serializes
    /// with computation on the device's compute lane and no overlap is
    /// possible — the performance penalty the paper cites for rejecting
    /// this design.
    UnifiedMemory {
        /// Migration page size in bytes (2 MiB on modern GPUs).
        page_bytes: u64,
        /// Fault-handling latency per page group, in µs.
        fault_us: f64,
        /// Sustained migration bandwidth, in GB/s.
        bandwidth_gb_s: f64,
    },
}

impl HaloPolicy {
    /// The unified-memory model with typical NVLink-system parameters.
    pub fn unified_default() -> Self {
        HaloPolicy::UnifiedMemory {
            page_bytes: 2 << 20,
            fault_us: 25.0,
            bandwidth_gb_s: 50.0,
        }
    }
}

/// Timing summary of one or more executions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecReport {
    /// Wall-clock (virtual) time from first enqueue to last completion.
    pub makespan: SimTime,
    /// Total kernel busy time summed over all streams and devices.
    pub kernel_time: SimTime,
    /// Total transfer busy time summed over all lanes.
    pub transfer_time: SimTime,
    /// Total host-step time.
    pub host_time: SimTime,
    /// Total collective-communication busy time over all lanes.
    pub collective_time: SimTime,
    /// Number of executions aggregated.
    pub executions: u64,
}

impl ExecReport {
    fn accumulate(&mut self, other: ExecReport) {
        self.makespan += other.makespan;
        self.kernel_time += other.kernel_time;
        self.transfer_time += other.transfer_time;
        self.host_time += other.host_time;
        self.collective_time += other.collective_time;
        self.executions += other.executions;
    }

    /// Average makespan per execution.
    pub fn time_per_execution(&self) -> SimTime {
        if self.executions == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_us(self.makespan.as_us() / self.executions as f64)
        }
    }
}

/// Replays a schedule on the virtual clock and (optionally) the real data.
pub struct Executor {
    backend: Backend,
    graph: Graph,
    schedule: Schedule,
    queue: QueueSim,
    compute_streams: usize,
    functional: bool,
    kernel_concurrency: bool,
    halo_policy: HaloPolicy,
    engine: CollectiveEngine,
    collective_mode: CollectiveMode,
}

impl Executor {
    /// Build an executor. Functional execution is enabled iff every
    /// compute node's iteration space has real storage.
    pub fn new(backend: Backend, graph: Graph, schedule: Schedule) -> Self {
        let compute_streams = schedule.num_streams;
        // lanes: [0, compute_streams) kernels, +0/+1 transfers, +2 host,
        // +3 collectives.
        let queue = QueueSim::new(backend.num_devices(), compute_streams + 4);
        let engine = CollectiveEngine::new(backend.topology().clone());
        let functional = graph.nodes().iter().all(|n| match &n.kind {
            NodeKind::Compute { container, .. } => container
                .space()
                .map(|s| s.supports_functional())
                .unwrap_or(true),
            _ => true,
        });
        Executor {
            backend,
            graph,
            schedule,
            queue,
            compute_streams,
            functional,
            kernel_concurrency: false,
            halo_policy: HaloPolicy::ExplicitTransfers,
            engine,
            collective_mode: CollectiveMode::default(),
        }
    }

    /// Select the halo coherency model (see [`HaloPolicy`]).
    pub fn set_halo_policy(&mut self, policy: HaloPolicy) {
        self.halo_policy = policy;
    }

    /// Select how collective nodes pick their algorithm (default:
    /// [`CollectiveMode::Auto`]).
    pub fn set_collective_mode(&mut self, mode: CollectiveMode) {
        self.collective_mode = mode;
        self.engine = CollectiveEngine::with_config(
            self.backend.topology().clone(),
            EngineConfig {
                algorithm: mode.fixed_algorithm(),
                ..EngineConfig::default()
            },
        );
    }

    /// The virtual-clock simulator (link utilization counters live here).
    pub fn queue(&self) -> &QueueSim {
        &self.queue
    }

    /// Let kernels of different streams run concurrently at full modelled
    /// bandwidth each.
    ///
    /// Off by default: the applications here are memory-bound, and a real
    /// GPU's bandwidth is shared between concurrent kernels, so the
    /// faithful model serializes a device's kernels on one lane (transfers
    /// keep their own DMA lanes). Enabling this reproduces the unphysical
    /// super-linear efficiencies the ablation demonstrates.
    pub fn set_kernel_concurrency(&mut self, on: bool) {
        self.kernel_concurrency = on;
    }

    /// Whether kernels actually run on data (vs. timing-only).
    pub fn is_functional(&self) -> bool {
        self.functional
    }

    /// Force timing-only execution (used by large benchmark sweeps).
    pub fn set_functional(&mut self, on: bool) {
        assert!(
            !on || self.graph.nodes().iter().all(|n| match &n.kind {
                NodeKind::Compute { container, .. } => container
                    .space()
                    .map(|s| s.supports_functional())
                    .unwrap_or(true),
                _ => true,
            }),
            "cannot enable functional execution on virtual storage"
        );
        self.functional = on;
    }

    /// Enable span recording on the virtual clock.
    pub fn enable_trace(&mut self) {
        self.queue.enable_trace();
    }

    /// Take the recorded trace (if tracing was enabled).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.queue.take_trace()
    }

    fn transfer_lane(&self, src: DeviceId, dst: DeviceId) -> usize {
        self.compute_streams + usize::from(dst.0 < src.0)
    }

    fn host_lane(&self) -> usize {
        self.compute_streams + 2
    }

    fn collective_lane(&self) -> usize {
        self.compute_streams + 3
    }

    /// Execute the plan once.
    pub fn execute(&mut self) -> ExecReport {
        let ndev = self.backend.num_devices();
        let t0 = self.queue.makespan();
        let mut report = ExecReport {
            executions: 1,
            ..Default::default()
        };
        // Completion time of each node on each device.
        let mut ends: Vec<Vec<SimTime>> = vec![vec![t0; ndev]; self.graph.len()];

        for ti in 0..self.schedule.tasks.len() {
            let task = self.schedule.tasks[ti].clone();
            let node_id: NodeId = task.node;
            let node = self.graph.node(node_id).clone();
            let parents: Vec<NodeId> = self.graph.data_parents(node_id).map(|e| e.from).collect();

            match &node.kind {
                NodeKind::Compute {
                    container,
                    view,
                    reduce_init,
                    reduce_finalize,
                } => {
                    let space = container
                        .space()
                        .expect("compute node has an iteration space")
                        .clone();
                    let bytes_per_cell = container.bytes_per_cell();
                    let flops_per_cell = container.flops_per_cell();
                    let eff = container.bw_efficiency();
                    for d in 0..ndev {
                        let dev = DeviceId(d);
                        let earliest = parents.iter().map(|&p| ends[p][d]).fold(t0, SimTime::max);
                        let cells = space.cell_count(dev, *view);
                        if cells == 0 {
                            ends[node_id][d] = earliest;
                            continue;
                        }
                        let dur = self.backend.device(dev).kernel_time(
                            cells * bytes_per_cell,
                            cells * flops_per_cell,
                            eff,
                        );
                        let lane = if self.kernel_concurrency {
                            task.stream
                        } else {
                            0
                        };
                        let stream = StreamId::new(dev, lane);
                        let (_, e) = self.queue.enqueue_from(
                            stream,
                            earliest,
                            dur,
                            &node.name,
                            SpanKind::Kernel,
                        );
                        report.kernel_time += dur;
                        ends[node_id][d] = e;
                    }
                    if *reduce_finalize {
                        // Folding partials into the host value synchronizes
                        // the devices and pays a host round trip.
                        let sync = self.backend.device(DeviceId(0)).sync_overhead();
                        let gmax =
                            (0..ndev).map(|d| ends[node_id][d]).fold(t0, SimTime::max) + sync;
                        report.host_time += sync;
                        for d in 0..ndev {
                            ends[node_id][d] = gmax;
                        }
                    }
                    if self.functional {
                        if *reduce_init {
                            container.reduce_init();
                        }
                        let view = *view;
                        std::thread::scope(|s| {
                            for d in 0..ndev {
                                let c = container.clone();
                                s.spawn(move || c.run_device(DeviceId(d), view));
                            }
                        });
                        if *reduce_finalize {
                            container.reduce_finalize();
                        }
                    }
                }
                NodeKind::Halo { exchange } => {
                    let mut into = vec![t0; ndev];
                    let mut from = vec![t0; ndev];
                    let mut constraint = vec![t0; ndev];
                    for d in 0..ndev {
                        constraint[d] = parents.iter().map(|&p| ends[p][d]).fold(t0, SimTime::max);
                        into[d] = constraint[d];
                        from[d] = constraint[d];
                    }
                    match self.halo_policy {
                        HaloPolicy::ExplicitTransfers => {
                            for desc in exchange.descriptors() {
                                let earliest = constraint[desc.src.0].max(constraint[desc.dst.0]);
                                let lane = self.transfer_lane(desc.src, desc.dst);
                                let dur = self
                                    .backend
                                    .topology()
                                    .transfer_time(desc.src, desc.dst, desc.bytes);
                                // Occupy the physical link: peer copies on a
                                // PCIe box all contend for the host root
                                // complex; NVLink pairs are dedicated.
                                let res = self
                                    .backend
                                    .topology()
                                    .link_resources(desc.src, desc.dst)
                                    .to_vec();
                                let stream = StreamId::new(desc.src, lane);
                                let (s, e) = self.queue.enqueue_transfer(
                                    stream,
                                    earliest,
                                    dur,
                                    &res,
                                    &node.name,
                                    SpanKind::Transfer,
                                );
                                report.transfer_time += e - s;
                                into[desc.dst.0] = into[desc.dst.0].max(e);
                                from[desc.src.0] = from[desc.src.0].max(e);
                            }
                        }
                        HaloPolicy::UnifiedMemory {
                            page_bytes,
                            fault_us,
                            bandwidth_gb_s,
                        } => {
                            // Pages migrate on first touch in the consuming
                            // kernel: the cost lands on the DESTINATION
                            // device's compute lane (lane 0), serializing
                            // with kernels — OCC cannot hide it.
                            for desc in exchange.descriptors() {
                                let earliest = constraint[desc.src.0].max(constraint[desc.dst.0]);
                                let pages = desc.bytes.div_ceil(page_bytes);
                                let dur = SimTime::from_us(
                                    pages as f64 * fault_us
                                        + desc.bytes as f64 / bandwidth_gb_s * 1e-3,
                                );
                                let stream = StreamId::new(desc.dst, 0);
                                let (_, e) = self.queue.enqueue_from(
                                    stream,
                                    earliest,
                                    dur,
                                    &format!("{}(um)", node.name),
                                    SpanKind::Transfer,
                                );
                                report.transfer_time += dur;
                                into[desc.dst.0] = into[desc.dst.0].max(e);
                                from[desc.src.0] = from[desc.src.0].max(e);
                            }
                        }
                    }
                    for d in 0..ndev {
                        ends[node_id][d] = into[d].max(from[d]);
                    }
                    if self.functional {
                        // Functionally, unified memory still ends up with
                        // coherent halos — the driver migrated the pages.
                        exchange.execute();
                    }
                }
                NodeKind::Host { container } => {
                    // Host steps synchronize against every parent on every
                    // device, pay a sync + host overhead, and gate everyone.
                    let sync = self.backend.device(DeviceId(0)).sync_overhead();
                    let earliest = parents
                        .iter()
                        .flat_map(|&p| ends[p].iter().copied())
                        .fold(t0, SimTime::max);
                    let stream = StreamId::new(DeviceId(0), self.host_lane());
                    let (_, e) =
                        self.queue
                            .enqueue_from(stream, earliest, sync, &node.name, SpanKind::Host);
                    report.host_time += sync;
                    for d in 0..ndev {
                        ends[node_id][d] = e;
                    }
                    if self.functional {
                        container.run_host();
                    }
                }
                NodeKind::Collective { container, bytes } => {
                    // Per-device readiness: a device joins the collective as
                    // soon as ITS parents are done — no global barrier.
                    let earliest: Vec<SimTime> = (0..ndev)
                        .map(|d| parents.iter().map(|&p| ends[p][d]).fold(t0, SimTime::max))
                        .collect();
                    let lane = self.collective_lane();
                    let timing = self.engine.schedule(
                        &mut self.queue,
                        CollectiveKind::AllReduce,
                        *bytes,
                        &earliest,
                        lane,
                        &node.name,
                    );
                    report.collective_time += timing.busy;
                    for d in 0..ndev {
                        ends[node_id][d] = timing.done[d];
                    }
                    if self.functional {
                        // Canonical rank-order fold: bit-identical to the
                        // host-staged merge regardless of algorithm.
                        container.reduce_finalize();
                    }
                }
            }
        }

        // Align all streams at the end of one execution so iterations
        // measure cleanly (a zero-cost barrier on the virtual clock).
        let end = self.queue.sync_all();
        report.makespan = end - t0;
        if self.queue.trace().is_some() {
            let topo = self.backend.topology();
            let stats: Vec<(String, f64, u64)> = (0..topo.num_link_resources())
                .map(|r| {
                    (
                        topo.link_resource_name(r).to_string(),
                        self.queue.link_busy_time(r).as_us(),
                        self.queue.link_contention_events(r),
                    )
                })
                .collect();
            if let Some(trace) = self.queue.trace_mut() {
                for (name, busy, contended) in stats {
                    trace.set_counter(&format!("link:{name}:busy_us"), busy);
                    trace.set_counter(&format!("link:{name}:contended"), contended as f64);
                }
            }
        }
        report
    }

    /// Execute the plan `n` times, aggregating the report.
    pub fn execute_iters(&mut self, n: usize) -> ExecReport {
        let mut total = ExecReport::default();
        for _ in 0..n {
            total.accumulate(self.execute());
        }
        total
    }
}
