//! The pass-manager compile pipeline.
//!
//! [`crate::skeleton::Skeleton::sequence`] used to hard-wire its five
//! compile stages as straight-line calls. This module makes the pipeline
//! explicit: each stage is a named [`Pass`] with a uniform interface over a
//! mutable [`Ir`], driven by a [`PassManager`] that
//!
//! * records per-pass wall-clock timings ([`PassTiming`]) and mirrors them
//!   as [`neon_sys::SpanKind::Compile`] trace spans,
//! * runs the [`crate::validate`] invariant checker between passes (when
//!   `SkeletonOptions::validate` is on), so a broken transform fails at the
//!   pass that broke it rather than as a wrong answer at execution time,
//! * emits a deterministic text dump of the IR after each pass (when
//!   `SkeletonOptions::dump_ir` is on, or the `NEON_DUMP_IR` environment
//!   variable is set, which prints to stderr).
//!
//! The standard pipeline is
//!
//! ```text
//! dependency-graph → fuse → multi-gpu → occ → collective-lowering
//!     → schedule → device-partition
//! ```
//!
//! and its product is consumed by [`crate::plan::CompiledPlan`].

use std::time::Instant;

use neon_set::{uid_roles, Container};
use neon_sys::{Backend, DeviceId, SimTime, SpanKind, Trace, TraceSpan};

use crate::collective::{lower_collectives, merge_collectives};
use crate::devplan::{build_device_plan_policy, ChunkPolicy, DevicePlan};
use crate::fuse::{FusePass, FusionLevel};
use crate::graph::{build_dependency_graph, EdgeKind, Graph, NodeId, NodeKind};
use crate::layout_select::{LayoutPolicy, LayoutRec, LayoutSelectPass};
use crate::multigpu::to_multigpu_graph;
use crate::occ::apply_occ;
use crate::schedule::{build_schedule_opts, Schedule};
use crate::skeleton::SkeletonOptions;
use crate::temporal::TemporalFusePass;
use crate::validate::{validate_ir, ValidationError};

/// The compilation state threaded through the passes.
pub struct Ir {
    /// The user's container sequence, in program order.
    pub containers: Vec<Container>,
    /// The raw dependency graph, kept for introspection once the multi-GPU
    /// transform rewrites `graph`.
    pub dependency_graph: Option<Graph>,
    /// The current execution graph.
    pub graph: Graph,
    /// The execution plan, produced by the schedule pass.
    pub schedule: Option<Schedule>,
    /// The per-device task partition + event table, produced by the final
    /// pass from the schedule.
    pub device_plan: Option<DevicePlan>,
    /// Set once halo-update nodes have been inserted; enables the halo
    /// precedence invariant (meaningless on the raw dependency graph).
    pub halos_inserted: bool,
    /// The layout policy the `layout-select` pass ran under.
    pub layout_policy: LayoutPolicy,
    /// Per-data-object layout recommendations (empty until the
    /// `layout-select` pass runs), in role order.
    pub layout_recs: Vec<LayoutRec>,
}

impl Ir {
    /// Fresh IR over a container sequence.
    pub fn new(containers: Vec<Container>) -> Self {
        Ir {
            containers,
            dependency_graph: None,
            graph: Graph::new(),
            schedule: None,
            device_plan: None,
            halos_inserted: false,
            layout_policy: LayoutPolicy::default(),
            layout_recs: Vec::new(),
        }
    }

    /// Deduplicated data-edge parents of every node of the current graph.
    pub fn data_parent_lists(&self) -> Vec<Vec<NodeId>> {
        (0..self.graph.len())
            .map(|n| {
                let mut v: Vec<NodeId> = self.graph.data_parents(n).map(|e| e.from).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect()
    }

    /// Deterministic text rendering of the IR.
    ///
    /// Data objects are labelled by their *role* — first-occurrence index
    /// over the sequence's access declarations — rather than their raw
    /// [`neon_set::DataUid`], which is a process-global counter and differs
    /// run to run. Two structurally identical sequences therefore dump
    /// identically, which is what lets a golden file assert the pipeline's
    /// output shape.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        // Fusion provenance: which sequence containers a fused node merges.
        let provenance = |n: &crate::graph::Node| -> String {
            if n.fused_sources.is_empty() {
                String::new()
            } else {
                format!(
                    " members={}",
                    n.fused_sources
                        .iter()
                        .map(|s| format!("c{s}"))
                        .collect::<Vec<_>>()
                        .join("+")
                )
            }
        };
        let roles = uid_roles(&self.containers);
        let label = |u: neon_set::DataUid| match roles.get(&u) {
            Some(r) => format!("u{r}"),
            None => "u?".to_string(),
        };
        let mut out = String::new();
        let _ = writeln!(out, "nodes: {}", self.graph.len());
        for (i, n) in self.graph.nodes().iter().enumerate() {
            match &n.kind {
                NodeKind::Compute {
                    view,
                    reduce_init,
                    reduce_finalize,
                    ..
                } => {
                    let mut flags = String::new();
                    if *reduce_init {
                        flags.push_str(" init");
                    }
                    if *reduce_finalize {
                        flags.push_str(" finalize");
                    }
                    let _ = writeln!(
                        out,
                        "  n{i}: compute {} view={view:?}{flags}{}",
                        n.name,
                        provenance(n)
                    );
                }
                NodeKind::Halo { exchange } => {
                    let _ = writeln!(out, "  n{i}: halo data={}", label(exchange.data_uid()));
                }
                NodeKind::Host { .. } => {
                    let _ = writeln!(out, "  n{i}: host {}", n.name);
                }
                NodeKind::Collective { bytes, .. } => {
                    let _ = writeln!(
                        out,
                        "  n{i}: collective {} bytes={bytes}{}",
                        n.name,
                        provenance(n)
                    );
                }
            }
        }
        let kind_rank = |k: EdgeKind| match k {
            EdgeKind::RaW => 0u8,
            EdgeKind::WaR => 1,
            EdgeKind::WaW => 2,
            EdgeKind::Sched => 3,
        };
        let mut edges: Vec<_> = self.graph.edges().to_vec();
        edges.sort_by_key(|e| (e.from, e.to, kind_rank(e.kind)));
        let _ = writeln!(out, "edges: {}", edges.len());
        for e in &edges {
            let data = match e.data {
                Some(u) => label(u),
                None => "-".to_string(),
            };
            let _ = writeln!(out, "  n{} -> n{} {:?} {data}", e.from, e.to, e.kind);
        }
        if !self.layout_recs.is_empty() {
            let _ = writeln!(
                out,
                "layout-select: policy={} ({} objects)",
                self.layout_policy.label(),
                self.layout_recs.len()
            );
            for r in &self.layout_recs {
                let _ = writeln!(
                    out,
                    "  u{} {}: {} ({})",
                    r.role,
                    r.name,
                    r.layout.label(),
                    r.reason
                );
            }
        }
        if let Some(s) = &self.schedule {
            let _ = writeln!(
                out,
                "schedule: {} tasks, {} streams",
                s.tasks.len(),
                s.num_streams
            );
            for (i, t) in s.tasks.iter().enumerate() {
                let waits = if t.wait.is_empty() {
                    "-".to_string()
                } else {
                    t.wait
                        .iter()
                        .map(|w| format!("n{w}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let _ = writeln!(
                    out,
                    "  t{i}: n{} stream={} wait={waits} signals={}",
                    t.node, t.stream, t.signals
                );
            }
        }
        if let Some(dp) = &self.device_plan {
            out.push_str(&dp.dump(&self.graph));
        }
        out
    }
}

/// Read-only context shared by all passes of one compilation.
pub struct PassCtx {
    /// The target backend.
    pub backend: Backend,
    /// The skeleton's options.
    pub options: SkeletonOptions,
}

/// A compile-pipeline failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A pass left the IR violating a pipeline invariant.
    Invariant {
        /// Name of the offending pass.
        pass: &'static str,
        /// The violated invariant.
        error: ValidationError,
    },
    /// The skeleton options are inconsistent; rejected before any pass
    /// runs (e.g. a resilience policy with zero attempts).
    InvalidOptions {
        /// What is wrong.
        reason: String,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Invariant { pass, error } => {
                write!(f, "after pass '{pass}': {error}")
            }
            CompileError::InvalidOptions { reason } => {
                write!(f, "invalid skeleton options: {reason}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// One named stage of the compile pipeline.
pub trait Pass {
    /// The pass's name (stable: used in timings, dumps and errors).
    fn name(&self) -> &'static str;
    /// Transform the IR in place.
    fn run(&self, ir: &mut Ir, cx: &PassCtx);
}

/// Wall-clock cost of one pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassTiming {
    /// The pass's name.
    pub name: &'static str,
    /// Wall-clock microseconds spent in the pass (validation and dump time
    /// excluded — they are diagnostics, not compilation).
    pub wall_us: f64,
}

/// Everything a pipeline run produces besides the IR itself.
#[derive(Debug, Clone, Default)]
pub struct CompileLog {
    /// Per-pass wall-clock timings, in pipeline order.
    pub timings: Vec<PassTiming>,
    /// `(pass name, dump)` pairs, one per pass, when dumps were requested.
    pub dumps: Vec<(String, String)>,
    /// The timings mirrored as [`SpanKind::Compile`] spans on a host lane,
    /// laid end to end from time zero.
    pub trace: Trace,
}

/// Extracts the data dependency graph from the containers' recorded
/// accesses (paper §V-A).
pub struct DependencyGraphPass;

impl Pass for DependencyGraphPass {
    fn name(&self) -> &'static str {
        "dependency-graph"
    }
    fn run(&self, ir: &mut Ir, _cx: &PassCtx) {
        ir.graph = build_dependency_graph(&ir.containers);
        ir.dependency_graph = Some(ir.graph.clone());
    }
}

/// Inserts halo-update nodes before boundary stencil reads and prunes
/// redundant edges (paper §V-B).
pub struct MultiGpuPass;

impl Pass for MultiGpuPass {
    fn name(&self) -> &'static str {
        "multi-gpu"
    }
    fn run(&self, ir: &mut Ir, cx: &PassCtx) {
        ir.graph = to_multigpu_graph(&ir.graph, cx.backend.num_devices());
        ir.halos_inserted = true;
    }
}

/// Splits kernels into internal/boundary halves at the configured OCC
/// level (paper §V-D).
pub struct OccPass;

impl Pass for OccPass {
    fn name(&self) -> &'static str {
        "occ"
    }
    fn run(&self, ir: &mut Ir, cx: &PassCtx) {
        ir.graph = apply_occ(&ir.graph, cx.options.occ);
    }
}

/// Lowers finalizing reduces to explicit collective nodes.
pub struct CollectivePass;

impl Pass for CollectivePass {
    fn name(&self) -> &'static str {
        "collective-lowering"
    }
    fn run(&self, ir: &mut Ir, cx: &PassCtx) {
        ir.graph = lower_collectives(&ir.graph, cx.backend.num_devices());
        if cx.options.fusion != FusionLevel::Off {
            ir.graph = merge_collectives(&ir.graph);
        }
    }
}

/// Maps nodes to streams, organizes events and fixes the enqueue order
/// (paper §V-C).
pub struct SchedulePass;

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }
    fn run(&self, ir: &mut Ir, cx: &PassCtx) {
        let max_streams = if cx.backend.concurrent_kernels() {
            cx.options.max_streams
        } else {
            1 // the CPU back end runs one kernel at a time (paper §IV-A)
        };
        ir.schedule = Some(build_schedule_opts(
            &ir.graph,
            max_streams,
            cx.options.hints,
        ));
    }
}

/// Partitions the schedule's tasks over the device workers and lowers
/// every data dependency to an event-slot wait (the table the functional
/// executor's worker pool synchronizes on).
pub struct DevicePartitionPass;

impl Pass for DevicePartitionPass {
    fn name(&self) -> &'static str {
        "device-partition"
    }
    fn run(&self, ir: &mut Ir, cx: &PassCtx) {
        let schedule = ir
            .schedule
            .as_ref()
            .expect("device-partition requires the schedule pass to have run");
        let parents = ir.data_parent_lists();
        ir.device_plan = Some(build_device_plan_policy(
            &ir.graph,
            schedule,
            &parents,
            cx.backend.num_devices(),
            cx.options.comm,
            ChunkPolicy::for_topology(cx.backend.topology()),
        ));
    }
}

/// Runs an ordered list of passes over an [`Ir`], validating and logging
/// between them.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// The standard nine-pass skeleton pipeline.
    pub fn standard() -> Self {
        PassManager {
            passes: vec![
                Box::new(DependencyGraphPass),
                Box::new(LayoutSelectPass),
                Box::new(FusePass),
                Box::new(TemporalFusePass),
                Box::new(MultiGpuPass),
                Box::new(OccPass),
                Box::new(CollectivePass),
                Box::new(SchedulePass),
                Box::new(DevicePartitionPass),
            ],
        }
    }

    /// A pipeline over caller-chosen passes (ablations, tests).
    pub fn with_passes(passes: Vec<Box<dyn Pass>>) -> Self {
        PassManager { passes }
    }

    /// The pass names, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run every pass over `ir`.
    ///
    /// After each pass the invariant validator runs (if
    /// `cx.options.validate`) and an IR dump is captured (if
    /// `cx.options.dump_ir`) or printed to stderr (if `NEON_DUMP_IR` is set
    /// in the environment).
    pub fn run(&self, ir: &mut Ir, cx: &PassCtx) -> Result<CompileLog, CompileError> {
        let env_dump = std::env::var_os("NEON_DUMP_IR").is_some();
        let mut log = CompileLog::default();
        let mut clock_us = 0.0f64;
        for pass in &self.passes {
            let t = Instant::now();
            pass.run(ir, cx);
            let wall_us = t.elapsed().as_secs_f64() * 1e6;
            log.timings.push(PassTiming {
                name: pass.name(),
                wall_us,
            });
            log.trace.push(TraceSpan {
                device: DeviceId(0),
                stream: 0,
                name: pass.name().to_string(),
                kind: SpanKind::Compile,
                start: SimTime::from_us(clock_us),
                end: SimTime::from_us(clock_us + wall_us),
            });
            clock_us += wall_us;
            if cx.options.validate {
                validate_ir(
                    &ir.graph,
                    ir.schedule.as_ref(),
                    cx.backend.num_devices(),
                    ir.halos_inserted,
                )
                .map_err(|error| CompileError::Invariant {
                    pass: pass.name(),
                    error,
                })?;
            }
            if cx.options.dump_ir || env_dump {
                let dump = ir.dump();
                if env_dump {
                    eprintln!("== NEON_DUMP_IR: after {} ==\n{dump}", pass.name());
                }
                if cx.options.dump_ir {
                    log.dumps.push((pass.name().to_string(), dump));
                }
            }
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occ::OccLevel;
    use neon_domain::{ops, DenseGrid, Dim3, Field, MemLayout, ScalarSet, Stencil, StorageMode};

    fn sequence(ndev: usize) -> (Backend, Vec<Container>) {
        let b = Backend::dgx_a100(ndev);
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 1.0, MemLayout::SoA).unwrap();
        let dot = ScalarSet::<f64>::new(ndev, "dot", 0.0, |a, b| a + b);
        let seq = vec![ops::set_value(&g, &x, 2.0), ops::dot(&g, &x, &x, &dot)];
        (b, seq)
    }

    #[test]
    fn standard_pipeline_produces_schedule_and_timings() {
        let (b, seq) = sequence(2);
        let mut ir = Ir::new(seq);
        let cx = PassCtx {
            backend: b,
            options: SkeletonOptions::default(),
        };
        let log = PassManager::standard().run(&mut ir, &cx).unwrap();
        assert!(ir.schedule.is_some());
        assert!(ir.dependency_graph.is_some());
        assert!(ir.device_plan.is_some());
        assert_eq!(
            log.timings.iter().map(|t| t.name).collect::<Vec<_>>(),
            vec![
                "dependency-graph",
                "layout-select",
                "fuse",
                "temporal-fuse",
                "multi-gpu",
                "occ",
                "collective-lowering",
                "schedule",
                "device-partition"
            ]
        );
        assert_eq!(log.trace.spans().len(), 9);
        assert!(log
            .trace
            .spans()
            .iter()
            .all(|s| s.kind == SpanKind::Compile));
    }

    #[test]
    fn dump_ir_captures_one_dump_per_pass() {
        let (b, seq) = sequence(2);
        let mut ir = Ir::new(seq);
        let cx = PassCtx {
            backend: b,
            options: SkeletonOptions {
                dump_ir: true,
                occ: OccLevel::Standard,
                ..Default::default()
            },
        };
        let log = PassManager::standard().run(&mut ir, &cx).unwrap();
        assert_eq!(log.dumps.len(), 9);
        // The raw dependency graph uses role labels, never raw uids.
        assert!(log.dumps[0].1.contains("u0"));
        // The layout-select dump carries a recommendation per data object.
        assert!(log.dumps[1].1.contains("layout-select: policy=auto"));
        // From the fuse pass on, the map+dot pair is one provenanced node.
        assert!(log.dumps[2..]
            .iter()
            .all(|(_, d)| d.contains("members=c0+c1")));
        // The final dump includes the schedule and the device plan.
        assert!(log.dumps.last().unwrap().1.contains("schedule:"));
        assert!(log.dumps.last().unwrap().1.contains("device-plan:"));
    }

    #[test]
    fn dumps_are_stable_across_recompiles() {
        // Two structurally identical sequences over *fresh* data must dump
        // identically (role labels, not raw uids).
        let (b1, seq1) = sequence(2);
        let (_b2, seq2) = sequence(2);
        let opts = SkeletonOptions {
            dump_ir: true,
            ..Default::default()
        };
        let mut ir1 = Ir::new(seq1);
        let mut ir2 = Ir::new(seq2);
        let cx1 = PassCtx {
            backend: b1.clone(),
            options: opts,
        };
        let log1 = PassManager::standard().run(&mut ir1, &cx1).unwrap();
        let log2 = PassManager::standard().run(&mut ir2, &cx1).unwrap();
        assert_eq!(log1.dumps, log2.dumps);
    }
}
