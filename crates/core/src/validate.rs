//! Inter-pass invariant validation for the compile pipeline.
//!
//! Every pass of the [`crate::pass::PassManager`] must hand the next pass a
//! well-formed IR. The validator makes that contract executable; it checks:
//!
//! 1. **Acyclicity** — the graph (data + hint edges) admits a topological
//!    order.
//! 2. **Conflict ordering** — any two nodes that touch the same data object
//!    where at least one writes are connected by a directed data-edge path,
//!    unless they provably cannot race: clones of one container instance
//!    (OCC split halves, a reduce kernel and its lowered collective), or
//!    cell-local accesses over disjoint views (an internal half and a
//!    boundary half iterate disjoint cells). This is what "WaR/WaW edges
//!    preserved across OCC splitting" means once splitting multiplies the
//!    endpoints.
//! 3. **Halo precedence** — every node that stencil-reads a partitioned
//!    field over a view containing boundary cells has a halo-update node for
//!    that field among its data-edge ancestors (multi-device backends only;
//!    internal halves are exempt by construction).
//! 4. **Schedule soundness** — one task per node, data edges respected by
//!    the enqueue order, and event begin/end pairing: every cross-stream /
//!    halo / collective data edge appears in the consumer's wait list, every
//!    waited-on task signals, every signalling task has a waiter, and waits
//!    reference earlier tasks only.

use std::collections::{HashMap, HashSet};

use neon_set::{ComputePattern, DataUid, DataView};

use crate::graph::{Graph, NodeId, NodeKind};
use crate::schedule::Schedule;

/// A violated pipeline invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// The graph contains a cycle through the named nodes.
    Cycle {
        /// Nodes left unprocessed by Kahn's algorithm (a superset of one
        /// cycle).
        nodes: Vec<String>,
    },
    /// Two nodes conflict on a data object but no data-edge path orders
    /// them.
    UnorderedConflict {
        /// One conflicting node.
        a: String,
        /// The other conflicting node.
        b: String,
        /// The shared data object's name.
        data: String,
    },
    /// A stencil reader has no halo-update ancestor for the field it reads.
    MissingHalo {
        /// The reading node.
        node: String,
        /// The stencil-read field's name.
        data: String,
    },
    /// The schedule's task count does not match the graph's node count.
    TaskCountMismatch {
        /// Tasks in the schedule.
        tasks: usize,
        /// Nodes in the graph.
        nodes: usize,
    },
    /// A node appears in more than one task (or not at all).
    DuplicateTask {
        /// The node's name.
        node: String,
    },
    /// A data edge runs against the task order.
    NotTopological {
        /// The producer node.
        from: String,
        /// The consumer node enqueued too early.
        to: String,
    },
    /// A data edge that needs an event is missing from the consumer's wait
    /// list.
    MissingEvent {
        /// The producer node.
        from: String,
        /// The consumer node.
        to: String,
    },
    /// A task waits on a node whose task does not signal (no event was
    /// recorded to wait for).
    WaitWithoutSignal {
        /// The waiting task's node.
        task: String,
        /// The awaited node.
        waited: String,
    },
    /// A task waits on a node enqueued after it.
    WaitNotEarlier {
        /// The waiting task's node.
        task: String,
        /// The awaited node.
        waited: String,
    },
    /// A task signals but nothing ever waits on it (dangling event begin).
    SignalWithoutWait {
        /// The signalling task's node.
        task: String,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Cycle { nodes } => {
                write!(f, "cycle through {}", nodes.join(", "))
            }
            ValidationError::UnorderedConflict { a, b, data } => {
                write!(f, "'{a}' and '{b}' conflict on {data} but are unordered")
            }
            ValidationError::MissingHalo { node, data } => {
                write!(f, "'{node}' stencil-reads {data} with no halo ancestor")
            }
            ValidationError::TaskCountMismatch { tasks, nodes } => {
                write!(f, "{tasks} tasks for {nodes} graph nodes")
            }
            ValidationError::DuplicateTask { node } => {
                write!(f, "node '{node}' is not scheduled exactly once")
            }
            ValidationError::NotTopological { from, to } => {
                write!(f, "'{to}' enqueued before its producer '{from}'")
            }
            ValidationError::MissingEvent { from, to } => {
                write!(
                    f,
                    "edge '{from}' -> '{to}' crosses streams without an event"
                )
            }
            ValidationError::WaitWithoutSignal { task, waited } => {
                write!(f, "'{task}' waits on '{waited}', which never signals")
            }
            ValidationError::WaitNotEarlier { task, waited } => {
                write!(f, "'{task}' waits on '{waited}', enqueued later")
            }
            ValidationError::SignalWithoutWait { task } => {
                write!(f, "'{task}' signals an event nobody waits on")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Per-node summary of how one data object is used.
#[derive(Default, Clone, Copy)]
struct UidUse {
    reads: bool,
    writes: bool,
    stencil: bool,
}

/// Collect each data object a node touches, with the aggregated mode and
/// whether any access to it is a stencil (non-local) access.
///
/// Halo nodes report nothing (their conflicts are covered by the halo
/// precedence check); collective nodes report only the reduced scalars —
/// the carried container's field reads belong to the accumulating kernel,
/// not to the communication step.
fn node_uses(kind: &NodeKind) -> HashMap<DataUid, UidUse> {
    let mut uses: HashMap<DataUid, UidUse> = HashMap::new();
    match kind {
        NodeKind::Halo { .. } => {}
        NodeKind::Collective { container, .. } => {
            for a in container.accesses() {
                if a.pattern == ComputePattern::Reduce {
                    let u = uses.entry(a.uid).or_default();
                    u.reads = true;
                    u.writes = true;
                }
            }
        }
        NodeKind::Compute { container, .. } | NodeKind::Host { container } => {
            for a in container.accesses() {
                let u = uses.entry(a.uid).or_default();
                u.reads |= a.mode.reads();
                u.writes |= a.mode.writes();
                u.stencil |= a.pattern == ComputePattern::Stencil;
            }
        }
    }
    uses
}

/// Kahn's algorithm over data + hint edges; returns a topological order or
/// the set of nodes stuck on a cycle.
fn check_acyclic(g: &Graph) -> Result<Vec<NodeId>, ValidationError> {
    let n = g.len();
    let mut indeg = vec![0usize; n];
    for e in g.edges() {
        indeg[e.to] += 1;
    }
    let mut stack: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = stack.pop() {
        order.push(u);
        for e in g.edges() {
            if e.from == u {
                indeg[e.to] -= 1;
                if indeg[e.to] == 0 {
                    stack.push(e.to);
                }
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let stuck: Vec<String> = (0..n)
            .filter(|&i| indeg[i] > 0)
            .map(|i| g.node(i).name.clone())
            .collect();
        Err(ValidationError::Cycle { nodes: stuck })
    }
}

/// `reach[u]` = nodes reachable from `u` via data edges (u excluded).
fn data_reachability(g: &Graph, topo: &[NodeId]) -> Vec<HashSet<NodeId>> {
    let mut reach: Vec<HashSet<NodeId>> = vec![HashSet::new(); g.len()];
    for &u in topo.iter().rev() {
        let mut r = HashSet::new();
        for e in g.data_children(u) {
            r.insert(e.to);
            r.extend(reach[e.to].iter().copied());
        }
        reach[u] = r;
    }
    reach
}

/// Whether two views iterate provably disjoint cell sets.
fn views_disjoint(a: DataView, b: DataView) -> bool {
    matches!(
        (a, b),
        (DataView::Internal, DataView::Boundary) | (DataView::Boundary, DataView::Internal)
    )
}

/// Validate a graph's structural invariants (checks 1–3 above).
///
/// `check_halos` is off before the multi-GPU pass has run (the raw
/// dependency graph legitimately has stencil readers with no halo nodes
/// yet).
pub fn validate_graph(g: &Graph, ndev: usize, check_halos: bool) -> Result<(), ValidationError> {
    let topo = check_acyclic(g)?;
    let reach = data_reachability(g, &topo);

    // Check 2: conflicting accesses are ordered (or provably race-free).
    let uses: Vec<HashMap<DataUid, UidUse>> =
        g.nodes().iter().map(|n| node_uses(&n.kind)).collect();
    let mut uid_names: HashMap<DataUid, String> = HashMap::new();
    for n in g.nodes() {
        if let Some(c) = n.container() {
            for a in c.accesses() {
                uid_names.entry(a.uid).or_insert_with(|| a.name.clone());
            }
        }
    }
    for a in 0..g.len() {
        for b in (a + 1)..g.len() {
            let (na, nb) = (g.node(a), g.node(b));
            if let (Some(ca), Some(cb)) = (na.container(), nb.container()) {
                if ca.same_instance(cb) {
                    continue; // split halves / kernel+collective of one launch
                }
            }
            for (uid, ua) in &uses[a] {
                let Some(ub) = uses[b].get(uid) else {
                    continue;
                };
                if !(ua.writes || ub.writes) {
                    continue; // two readers never conflict
                }
                let cell_local = !ua.stencil && !ub.stencil;
                if cell_local && views_disjoint(na.view(), nb.view()) {
                    continue; // disjoint iteration sets cannot race
                }
                if !reach[a].contains(&b) && !reach[b].contains(&a) {
                    return Err(ValidationError::UnorderedConflict {
                        a: na.name.clone(),
                        b: nb.name.clone(),
                        data: uid_names
                            .get(uid)
                            .cloned()
                            .unwrap_or_else(|| format!("{uid:?}")),
                    });
                }
            }
        }
    }

    // Check 3: every boundary-touching stencil read has a halo ancestor.
    if check_halos && ndev >= 2 {
        for (id, n) in g.nodes().iter().enumerate() {
            if n.view() == DataView::Internal {
                continue; // internal cells never touch halo data
            }
            let Some(c) = n.container() else { continue };
            for acc in c.stencil_reads() {
                let live = acc
                    .halo
                    .as_ref()
                    .map(|h| !h.descriptors().is_empty())
                    .unwrap_or(false);
                if !live {
                    continue;
                }
                let covered = (0..g.len()).any(|h| {
                    matches!(&g.node(h).kind, NodeKind::Halo { exchange }
                        if exchange.data_uid() == acc.uid)
                        && reach[h].contains(&id)
                });
                if !covered {
                    return Err(ValidationError::MissingHalo {
                        node: n.name.clone(),
                        data: acc.name.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Validate a schedule against its graph (check 4 above).
pub fn validate_schedule(g: &Graph, s: &Schedule) -> Result<(), ValidationError> {
    if s.tasks.len() != g.len() {
        return Err(ValidationError::TaskCountMismatch {
            tasks: s.tasks.len(),
            nodes: g.len(),
        });
    }
    let mut pos = vec![usize::MAX; g.len()];
    for (i, t) in s.tasks.iter().enumerate() {
        if pos[t.node] != usize::MAX {
            return Err(ValidationError::DuplicateTask {
                node: g.node(t.node).name.clone(),
            });
        }
        pos[t.node] = i;
    }
    if let Some(missing) = (0..g.len()).find(|&n| pos[n] == usize::MAX) {
        return Err(ValidationError::DuplicateTask {
            node: g.node(missing).name.clone(),
        });
    }

    // Data edges respected by the enqueue order, and evented when they
    // cross streams or involve halo/collective endpoints.
    for e in g.edges() {
        if !e.kind.is_data() {
            continue;
        }
        if pos[e.from] >= pos[e.to] {
            return Err(ValidationError::NotTopological {
                from: g.node(e.from).name.clone(),
                to: g.node(e.to).name.clone(),
            });
        }
        let needs_event = s.stream_of[e.from] != s.stream_of[e.to]
            || g.node(e.from).is_halo()
            || g.node(e.to).is_halo()
            || g.node(e.from).is_collective()
            || g.node(e.to).is_collective();
        if needs_event && !s.tasks[pos[e.to]].wait.contains(&e.from) {
            return Err(ValidationError::MissingEvent {
                from: g.node(e.from).name.clone(),
                to: g.node(e.to).name.clone(),
            });
        }
    }

    // Event begin/end pairing.
    let mut waited: HashSet<NodeId> = HashSet::new();
    for (i, t) in s.tasks.iter().enumerate() {
        for &w in &t.wait {
            waited.insert(w);
            if pos[w] >= i {
                return Err(ValidationError::WaitNotEarlier {
                    task: g.node(t.node).name.clone(),
                    waited: g.node(w).name.clone(),
                });
            }
            if !s.tasks[pos[w]].signals {
                return Err(ValidationError::WaitWithoutSignal {
                    task: g.node(t.node).name.clone(),
                    waited: g.node(w).name.clone(),
                });
            }
        }
    }
    for t in &s.tasks {
        if t.signals && !waited.contains(&t.node) {
            return Err(ValidationError::SignalWithoutWait {
                task: g.node(t.node).name.clone(),
            });
        }
    }
    Ok(())
}

/// Validate the full IR state: the graph always, the schedule if present.
pub fn validate_ir(
    g: &Graph,
    schedule: Option<&Schedule>,
    ndev: usize,
    check_halos: bool,
) -> Result<(), ValidationError> {
    validate_graph(g, ndev, check_halos)?;
    if let Some(s) = schedule {
        validate_schedule(g, s)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::lower_collectives;
    use crate::graph::{build_dependency_graph, Edge, EdgeKind};
    use crate::multigpu::to_multigpu_graph;
    use crate::occ::{apply_occ, OccLevel};
    use crate::schedule::build_schedule;
    use neon_domain::{
        ops, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike as _, MemLayout,
        ScalarSet, Stencil, StorageMode,
    };
    use neon_sys::Backend;

    /// map(x) → laplace(x→y) → dot(y,y), 2 devices, 7-point stencil.
    fn pipeline(ndev: usize, level: OccLevel) -> Graph {
        let b = Backend::dgx_a100(ndev);
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 16), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        let dot = ScalarSet::<f64>::new(ndev, "dot", 0.0, |a, b| a + b);
        let laplace = {
            let (xc, yc) = (x.clone(), y.clone());
            neon_set::Container::compute("laplace", g.as_space(), move |ldr| {
                let xv = ldr.read_stencil(&xc);
                let yv = ldr.write(&yc);
                Box::new(move |c| {
                    let mut s = 0.0;
                    for slot in 0..6 {
                        s += xv.ngh(c, slot, 0);
                    }
                    yv.set(c, 0, s);
                })
            })
        };
        let seq = vec![
            ops::set_value(&g, &x, 1.0),
            laplace,
            ops::dot(&g, &y, &y, &dot),
        ];
        let mg = to_multigpu_graph(&build_dependency_graph(&seq), ndev);
        lower_collectives(&apply_occ(&mg, level), ndev)
    }

    #[test]
    fn valid_pipeline_passes_at_all_occ_levels() {
        for ndev in [1, 2, 4] {
            for level in OccLevel::ALL {
                let g = pipeline(ndev, level);
                validate_graph(&g, ndev, true).unwrap_or_else(|e| {
                    panic!("ndev={ndev} level={level}: {e}");
                });
                let s = build_schedule(&g, 8);
                validate_schedule(&g, &s).unwrap_or_else(|e| {
                    panic!("ndev={ndev} level={level} schedule: {e}");
                });
            }
        }
    }

    #[test]
    fn missing_halo_edge_rejected() {
        let mut g = pipeline(2, OccLevel::None);
        let halo = (0..g.len()).find(|&i| g.node(i).is_halo()).unwrap();
        // Corrupt: sever every edge out of the halo node.
        g.edges_mut().retain(|e| e.from != halo);
        let err = validate_graph(&g, 2, true).unwrap_err();
        assert!(
            matches!(err, ValidationError::MissingHalo { .. }),
            "got {err}"
        );
    }

    #[test]
    fn unordered_conflict_rejected() {
        let mut g = pipeline(2, OccLevel::None);
        // Corrupt: drop every data edge into the stencil node, leaving the
        // producer map racing with the consumer.
        let stencil = (0..g.len()).find(|&i| g.node(i).name == "laplace").unwrap();
        g.edges_mut().retain(|e| e.to != stencil);
        let err = validate_graph(&g, 2, true).unwrap_err();
        assert!(
            matches!(
                err,
                ValidationError::UnorderedConflict { .. } | ValidationError::MissingHalo { .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut g = pipeline(1, OccLevel::None);
        let last = g.len() - 1;
        g.edges_mut().push(Edge {
            from: last,
            to: 0,
            kind: EdgeKind::RaW,
            data: None,
        });
        let err = validate_graph(&g, 1, true).unwrap_err();
        assert!(matches!(err, ValidationError::Cycle { .. }), "got {err}");
    }

    #[test]
    fn tampered_schedule_rejected() {
        let g = pipeline(2, OccLevel::Standard);
        let good = build_schedule(&g, 8);
        validate_schedule(&g, &good).unwrap();

        // Reverse the task order: breaks topology.
        let mut bad = good.clone();
        bad.tasks.reverse();
        assert!(validate_schedule(&g, &bad).is_err());

        // Drop all wait lists: breaks event pairing.
        let mut bad = good.clone();
        for t in &mut bad.tasks {
            t.wait.clear();
        }
        assert!(matches!(
            validate_schedule(&g, &bad).unwrap_err(),
            ValidationError::MissingEvent { .. }
        ));

        // Truncate: breaks the count.
        let mut bad = good.clone();
        bad.tasks.pop();
        assert!(matches!(
            validate_schedule(&g, &bad).unwrap_err(),
            ValidationError::TaskCountMismatch { .. }
        ));
    }
}
