//! Temporal blocking: the `temporal-fuse` pass.
//!
//! Under [`FusionLevel::Temporal(k)`](crate::fuse::FusionLevel), this pass
//! rewrites a post-fuse graph that is one legal stencil sweep into a single
//! *super-step* node executing `k` whole iterations per launch. The
//! super-step's halo reads are promoted to depth `k·r` (one deep exchange
//! replaces `k` rounds of depth `r`), and each rep recomputes the ghost
//! zone it will read next rep — exactly the values the owning device
//! computes, so results stay bit-identical to the unfused run.
//!
//! # Legality (whole graph or nothing)
//!
//! The rewrite collapses the entire sweep into one node, so it applies only
//! when the *whole* graph qualifies:
//!
//! - every node is a pure compute launch (no host steps, no reduction
//!   init/finalize — reductions observe a globally folded scalar each
//!   iteration and therefore close super-steps);
//! - all members iterate one shared grid;
//! - at least one member stencil-reads (otherwise there is nothing to
//!   block — map chains have no cross-device dependence);
//! - no member stencil-reads a field an *earlier* member of the same
//!   iteration wrote: the ghost zone shrinks by `r` per *rep*, so data
//!   flowing through a stencil *within* one rep would need ghost layers
//!   the schedule never refreshed;
//! - the grid stores enough ghost layers to iterate `(k-1)·r` beyond the
//!   owned interior, and every read-before-write field can host a
//!   depth-`k·r` exchange.
//!
//! Any failure leaves the graph untouched: `Temporal(k)` then behaves
//! exactly like `Conservative` (which already ran), preserving
//! bit-identical results with the same halo traffic.

use neon_set::{ComputePattern, Container, DataUid, DataView};

use crate::fuse::FusionLevel;
use crate::graph::{Graph, Node, NodeKind};
use crate::pass::{Ir, Pass, PassCtx};

/// Rewrites a repeated-sweep graph into one `k`-iteration super-step.
pub struct TemporalFusePass;

impl Pass for TemporalFusePass {
    fn name(&self) -> &'static str {
        "temporal-fuse"
    }

    fn run(&self, ir: &mut Ir, cx: &PassCtx) {
        let k = match cx.options.fusion {
            FusionLevel::Temporal(k) if k >= 2 => k,
            _ => return,
        };
        if let Some(node) = super_step(&ir.graph, k) {
            let mut g = Graph::new();
            g.add_node(node);
            ir.graph = g;
        }
    }
}

/// Build the super-step node if the whole graph qualifies, else `None`.
fn super_step(g: &Graph, k: u8) -> Option<Node> {
    if g.is_empty() {
        return None;
    }
    // Gather members (and their sequence indices) in node order, unwrapping
    // nothing: a fused node contributes its fused wrapper as one member so
    // plan rebinding can re-chunk `fused_sources` by member arity.
    let mut members: Vec<Container> = Vec::new();
    let mut sources: Vec<usize> = Vec::new();
    for n in g.nodes() {
        match &n.kind {
            NodeKind::Compute {
                container,
                view: DataView::Standard,
                reduce_init: false,
                reduce_finalize: false,
            } => {
                if n.fused_sources.is_empty() {
                    sources.push(n.source?);
                } else {
                    sources.extend(n.fused_sources.iter().copied());
                }
                members.push(container.clone());
            }
            _ => return None,
        }
    }

    // One shared grid, with identity (anonymous spaces cannot prove it).
    let space = members[0].space()?.clone();
    let sid = space.space_id()?;
    let mut radius = 1usize;
    let mut any_stencil = false;
    for m in &members {
        if m.space()?.space_id() != Some(sid) {
            return None;
        }
        for a in m.accesses() {
            if a.reduce_hooks.is_some() {
                return None;
            }
            if a.pattern == ComputePattern::Stencil && a.mode.reads() {
                any_stencil = true;
                radius = radius.max(a.halo.as_ref().map_or(1, |h| h.depth()));
            }
        }
    }
    if !any_stencil {
        return None;
    }

    // No intra-iteration stencil RAW, walking flattened member order (a
    // fused wrapper's merged records preserve that order).
    let mut written: std::collections::HashSet<DataUid> = std::collections::HashSet::new();
    let deep = k as usize * radius;
    for m in &members {
        // Access-record order is program order — mirror the promotion walk
        // in `Container::temporal` exactly.
        for a in m.accesses() {
            if a.pattern == ComputePattern::Stencil && a.mode.reads() && written.contains(&a.uid) {
                return None;
            }
            // Reads of fields not yet written this step become the deep
            // exchange — the field must be able to host one.
            if a.mode.reads() && !written.contains(&a.uid) {
                if let Some(fx) = &a.field_exchange {
                    if !fx.descriptors().is_empty() && fx.at_depth(deep).is_none() {
                        return None;
                    }
                }
            }
            if a.mode.writes() {
                written.insert(a.uid);
            }
        }
    }

    // Rep 0 iterates `(k-1)·r` layers past the owned interior.
    if space.ghost_capacity() < (k as usize - 1) * radius {
        return None;
    }

    let name = format!(
        "temporal{{{}}}x{}",
        members
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join("+"),
        k
    );
    let container = Container::temporal(&name, members, k);
    Some(Node::with_fused_sources(
        name,
        NodeKind::Compute {
            container,
            view: DataView::Standard,
            reduce_init: false,
            reduce_finalize: false,
        },
        sources,
    ))
}
