//! Scheduling a multi-GPU graph (paper §V-C).
//!
//! The greedy three-phase algorithm from the paper:
//!
//! 1. **Mapping nodes to streams** — BFS levels over the data edges
//!    (Fig. 5); the widest level determines how many streams are needed;
//!    within a level each node prefers a stream one of its parents used,
//!    which skips event synchronizations later.
//! 2. **Organizing event synchronization** — an edge whose endpoints sit
//!    on different streams needs a completion event from the parent in
//!    the child's wait list.
//! 3. **Task list order** — a second BFS including the *scheduling hint*
//!    edges produces the order in which the host enqueues tasks; this is
//!    what realizes OCC (e.g. internal halves enqueued before boundary
//!    halves so a stream never idles waiting for a halo).

use crate::graph::{Graph, NodeId};

/// One enqueue operation of the execution plan.
#[derive(Debug, Clone)]
pub struct Task {
    /// The graph node to execute.
    pub node: NodeId,
    /// The multi-GPU stream (same index on every device) it runs on.
    pub stream: usize,
    /// Parents on *other* streams whose completion events must be awaited.
    pub wait: Vec<NodeId>,
    /// Whether any child waits on this task's completion event.
    pub signals: bool,
}

/// An ordered execution plan for a graph.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Tasks in host enqueue order (a topological order incl. hints).
    pub tasks: Vec<Task>,
    /// Number of compute streams used.
    pub num_streams: usize,
    /// Stream assigned to each node.
    pub stream_of: Vec<usize>,
}

impl Schedule {
    /// The task index of a node.
    pub fn task_of(&self, node: NodeId) -> Option<usize> {
        self.tasks.iter().position(|t| t.node == node)
    }

    /// Render the plan as a table: enqueue order, node, stream, events —
    /// the structure the paper describes in §V-C.
    pub fn render(&self, g: &Graph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let header = format!(
            "{0:>3}  {1:<28} {2:>6}  {3:<20} signals",
            "#", "node", "stream", "waits on"
        );
        let _ = writeln!(out, "{header}");
        for (i, t) in self.tasks.iter().enumerate() {
            let waits = if t.wait.is_empty() {
                "-".to_string()
            } else {
                t.wait
                    .iter()
                    .map(|&n| g.node(n).name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(
                out,
                "{i:>3}  {:<28} {:>6}  {:<20} {}",
                g.node(t.node).name,
                t.stream,
                waits,
                if t.signals { "yes" } else { "" }
            );
        }
        out
    }
}

/// Build the execution plan for `g` with at most `max_streams` concurrent
/// streams (1 for the CPU back end, which runs one kernel at a time).
pub fn build_schedule(g: &Graph, max_streams: usize) -> Schedule {
    build_schedule_opts(g, max_streams, true)
}

/// [`build_schedule`] with the scheduling hints optionally ignored
/// (ablation: the paper argues hints are what turns *potential* overlap
/// into actual overlap).
pub fn build_schedule_opts(g: &Graph, max_streams: usize, use_hints: bool) -> Schedule {
    assert!(max_streams >= 1);
    let n = g.len();
    if n == 0 {
        return Schedule {
            tasks: Vec::new(),
            num_streams: 1,
            stream_of: Vec::new(),
        };
    }

    // Phase 1: stream mapping over data-only BFS levels.
    let levels = g.bfs_levels(false);
    let width = levels.iter().map(Vec::len).max().unwrap_or(1);
    let num_streams = width.clamp(1, max_streams);
    let mut stream_of = vec![usize::MAX; n];
    for level in &levels {
        let mut used = vec![false; num_streams];
        let mut pending: Vec<NodeId> = Vec::new();
        for &u in level {
            // Prefer a parent's stream that is still free in this level.
            let parent_stream = g
                .data_parents(u)
                .map(|e| stream_of[e.from])
                .find(|&s| s != usize::MAX && !used[s]);
            if let Some(s) = parent_stream {
                stream_of[u] = s;
                used[s] = true;
            } else {
                pending.push(u);
            }
        }
        let mut next_free = 0usize;
        for u in pending {
            while next_free < num_streams && used[next_free] {
                next_free += 1;
            }
            if next_free < num_streams {
                stream_of[u] = next_free;
                used[next_free] = true;
            } else {
                // More nodes than streams: round-robin reuse.
                stream_of[u] = u % num_streams;
            }
        }
    }

    // Phase 3 first (ordering), then phase 2 per ordered task.
    let order: Vec<NodeId> = g.bfs_levels(use_hints).into_iter().flatten().collect();

    // Phase 2: events where an edge crosses streams.
    let mut signals = vec![false; n];
    let mut tasks: Vec<Task> = Vec::with_capacity(n);
    for &u in &order {
        let mut wait: Vec<NodeId> = g
            .data_parents(u)
            .filter(|e| {
                stream_of[e.from] != stream_of[u]
                    || g.node(e.from).is_halo()
                    || g.node(u).is_halo()
                    || g.node(e.from).is_collective()
                    || g.node(u).is_collective()
            })
            .map(|e| e.from)
            .collect();
        wait.sort_unstable();
        wait.dedup();
        for &p in &wait {
            signals[p] = true;
        }
        tasks.push(Task {
            node: u,
            stream: stream_of[u],
            wait,
            signals: false,
        });
    }
    for t in &mut tasks {
        t.signals = signals[t.node];
    }

    Schedule {
        tasks,
        num_streams,
        stream_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Edge, EdgeKind, Graph, Node, NodeKind};
    use neon_set::Container;

    fn host_node(name: &str) -> Node {
        Node::new(
            name,
            NodeKind::Host {
                container: Container::host(name, 1, |_| Box::new(|| {})),
            },
        )
    }

    fn edge(from: NodeId, to: NodeId, kind: EdgeKind) -> Edge {
        Edge {
            from,
            to,
            kind,
            data: None,
        }
    }

    /// Diamond: a → (b, c) → d.
    fn diamond() -> Graph {
        let mut g = Graph::new();
        for n in ["a", "b", "c", "d"] {
            g.add_node(host_node(n));
        }
        g.add_edge(edge(0, 1, EdgeKind::RaW));
        g.add_edge(edge(0, 2, EdgeKind::RaW));
        g.add_edge(edge(1, 3, EdgeKind::RaW));
        g.add_edge(edge(2, 3, EdgeKind::RaW));
        g
    }

    #[test]
    fn diamond_uses_two_streams() {
        let s = build_schedule(&diamond(), 8);
        assert_eq!(s.num_streams, 2);
        assert_ne!(s.stream_of[1], s.stream_of[2], "b and c run concurrently");
    }

    #[test]
    fn child_prefers_parent_stream() {
        let s = build_schedule(&diamond(), 8);
        // d shares a stream with b or c; a shares with one of them too.
        assert!(s.stream_of[3] == s.stream_of[1] || s.stream_of[3] == s.stream_of[2]);
    }

    #[test]
    fn cross_stream_edges_get_events() {
        let s = build_schedule(&diamond(), 8);
        let d_task = s.tasks.iter().find(|t| t.node == 3).unwrap();
        // d waits at least on the parent from the other stream.
        assert!(!d_task.wait.is_empty());
        let other = if s.stream_of[3] == s.stream_of[1] {
            2
        } else {
            1
        };
        assert!(d_task.wait.contains(&other));
        // That parent signals.
        assert!(s.tasks.iter().find(|t| t.node == other).unwrap().signals);
    }

    #[test]
    fn same_stream_chain_skips_events() {
        let mut g = Graph::new();
        for n in ["a", "b", "c"] {
            g.add_node(host_node(n));
        }
        g.add_edge(edge(0, 1, EdgeKind::RaW));
        g.add_edge(edge(1, 2, EdgeKind::RaW));
        let s = build_schedule(&g, 8);
        assert_eq!(s.num_streams, 1);
        for t in &s.tasks {
            assert!(
                t.wait.is_empty(),
                "linear chain on one stream needs no events"
            );
        }
    }

    #[test]
    fn task_order_is_topological() {
        let g = diamond();
        let s = build_schedule(&g, 8);
        let pos: Vec<usize> = (0..4).map(|n| s.task_of(n).unwrap()).collect();
        for e in g.edges() {
            assert!(pos[e.from] < pos[e.to]);
        }
    }

    #[test]
    fn hints_shape_the_order() {
        // a → b, a → c (data); hint c → b forces c before b.
        let mut g = Graph::new();
        for n in ["a", "b", "c"] {
            g.add_node(host_node(n));
        }
        g.add_edge(edge(0, 1, EdgeKind::RaW));
        g.add_edge(edge(0, 2, EdgeKind::RaW));
        g.add_edge(edge(2, 1, EdgeKind::Sched));
        let s = build_schedule(&g, 8);
        assert!(s.task_of(2).unwrap() < s.task_of(1).unwrap());
        // Hints don't influence stream width (b and c still concurrent).
        assert_eq!(s.num_streams, 2);
    }

    #[test]
    fn stream_cap_respected() {
        // Five independent nodes, cap at 2 streams.
        let mut g = Graph::new();
        for i in 0..5 {
            g.add_node(host_node(&format!("n{i}")));
        }
        let s = build_schedule(&g, 2);
        assert_eq!(s.num_streams, 2);
        assert!(s.stream_of.iter().all(|&x| x < 2));
    }

    #[test]
    fn empty_graph() {
        let s = build_schedule(&Graph::new(), 4);
        assert!(s.tasks.is_empty());
    }
}
