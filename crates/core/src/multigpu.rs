//! The multi-GPU graph transform (paper §V-B).
//!
//! Takes the data dependency graph and makes it executable on a
//! partitioned back end: every stencil launch whose input field's halos
//! may be stale gets a halo-update node inserted in front of it, wired so
//! that
//!
//! * the halo update waits for the field's last writer (RaW),
//! * earlier stencil readers of the field finish before their halo data
//!   is overwritten (WaR), and
//! * the stencil launch waits for the halo update (RaW).
//!
//! Afterwards redundant transitive edges are pruned (the paper drops the
//! map→dot edge of its running example).

use std::collections::HashMap;

use neon_set::DataUid;

use crate::graph::{Edge, EdgeKind, Graph, Node, NodeId, NodeKind};

/// Insert halo-update nodes for a `num_devices`-way partitioned backend.
///
/// With one device no halos exist and the graph is returned (reduced)
/// unchanged.
pub fn to_multigpu_graph(g: &Graph, num_devices: usize) -> Graph {
    let mut out = Graph::new();
    // Old node id → new node id (halo nodes are appended between).
    let mut remap: Vec<NodeId> = Vec::with_capacity(g.len());
    // Per data object: who wrote it last / which halo node covers the
    // current contents / who read it through a stencil since.
    let mut last_writer: HashMap<DataUid, NodeId> = HashMap::new();
    let mut valid_halo: HashMap<DataUid, NodeId> = HashMap::new();
    let mut stencil_readers: HashMap<DataUid, Vec<NodeId>> = HashMap::new();

    // First copy nodes in order, injecting halo nodes where needed.
    for (old_id, node) in g.nodes().iter().enumerate() {
        // Which fields does this node read through a stencil?
        let mut halo_deps: Vec<NodeId> = Vec::new();
        if let Some(c) = node.container() {
            for a in c.stencil_reads() {
                let Some(exchange) = a.halo.clone() else {
                    continue; // unpartitioned data: nothing to update
                };
                if num_devices < 2 || exchange.descriptors().is_empty() {
                    continue;
                }
                let uid = a.uid;
                let halo_id = if let Some(&h) = valid_halo.get(&uid) {
                    h
                } else {
                    let h = out.add_node(Node::new(
                        format!("halo({})", exchange.data_name()),
                        NodeKind::Halo { exchange },
                    ));
                    // Halo waits for the last writer of the field.
                    if let Some(&w) = last_writer.get(&uid) {
                        out.add_edge(Edge {
                            from: w,
                            to: h,
                            kind: EdgeKind::RaW,
                            data: Some(uid),
                        });
                    }
                    // Halo overwrites halo regions read by earlier stencil
                    // consumers of the field.
                    for &r in stencil_readers.get(&uid).into_iter().flatten() {
                        out.add_edge(Edge {
                            from: r,
                            to: h,
                            kind: EdgeKind::WaR,
                            data: Some(uid),
                        });
                    }
                    valid_halo.insert(uid, h);
                    stencil_readers.insert(uid, Vec::new());
                    h
                };
                halo_deps.push(halo_id);
            }
        }

        let new_id = out.add_node(node.clone());
        remap.push(new_id);

        for h in halo_deps {
            out.add_edge(Edge {
                from: h,
                to: new_id,
                kind: EdgeKind::RaW,
                data: None,
            });
        }

        // Copy original in-edges.
        for e in g.all_parents(old_id) {
            out.add_edge(Edge {
                from: remap[e.from],
                to: new_id,
                kind: e.kind,
                data: e.data,
            });
        }

        // Update tracking from this node's accesses.
        if let Some(c) = node.container() {
            for a in c.accesses() {
                if a.mode.writes() {
                    last_writer.insert(a.uid, new_id);
                    valid_halo.remove(&a.uid);
                }
                if a.mode.reads() && a.halo.is_some() {
                    stencil_readers.entry(a.uid).or_default().push(new_id);
                }
            }
        }
    }

    out.transitive_reduce();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_dependency_graph;
    use neon_domain::{
        ops, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike as _,
        MemLayout, ScalarSet, Stencil, StorageMode,
    };
    use neon_sys::Backend;

    fn fixtures(
        n_dev: usize,
    ) -> (
        DenseGrid,
        Field<f64, DenseGrid>,
        Field<f64, DenseGrid>,
        ScalarSet<f64>,
    ) {
        let b = Backend::dgx_a100(n_dev);
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 16), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        let d = ScalarSet::<f64>::new(n_dev, "dot", 0.0, |a, b| a + b);
        (g, x, y, d)
    }

    fn laplace(g: &DenseGrid, x: &Field<f64, DenseGrid>, y: &Field<f64, DenseGrid>) -> Container {
        let (xc, yc) = (x.clone(), y.clone());
        Container::compute("laplace", g.as_space(), move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |c| {
                let mut s = 0.0;
                for slot in 0..6 {
                    s += xv.ngh(c, slot, 0);
                }
                yv.set(c, 0, s);
            })
        })
    }

    #[test]
    fn halo_node_inserted_before_stencil() {
        let (g, x, y, dot_s) = fixtures(2);
        let seq = vec![
            ops::set_value(&g, &x, 1.0),
            laplace(&g, &x, &y),
            ops::dot(&g, &y, &y, &dot_s),
        ];
        let dep = build_dependency_graph(&seq);
        let mg = to_multigpu_graph(&dep, 2);
        assert_eq!(mg.len(), 4, "one halo node added");
        let halo = mg.nodes().iter().position(|n| n.is_halo()).unwrap();
        let stencil = mg.nodes().iter().position(|n| n.name == "laplace").unwrap();
        let writer = mg
            .nodes()
            .iter()
            .position(|n| n.name.starts_with("set"))
            .unwrap();
        // writer → halo → stencil.
        assert!(mg.edges().iter().any(|e| e.from == writer && e.to == halo));
        assert!(mg.edges().iter().any(|e| e.from == halo && e.to == stencil));
    }

    #[test]
    fn no_halo_on_single_device() {
        let (g, x, y, dot_s) = fixtures(1);
        let seq = vec![
            ops::set_value(&g, &x, 1.0),
            laplace(&g, &x, &y),
            ops::dot(&g, &y, &y, &dot_s),
        ];
        let dep = build_dependency_graph(&seq);
        let mg = to_multigpu_graph(&dep, 1);
        assert_eq!(mg.len(), 3);
        assert!(!mg.nodes().iter().any(|n| n.is_halo()));
    }

    #[test]
    fn halo_reused_when_field_unchanged() {
        // Two stencils on the same unmodified field need one halo update.
        let (g, x, y, _) = fixtures(2);
        let seq = vec![
            ops::set_value(&g, &x, 1.0),
            laplace(&g, &x, &y),
            laplace(&g, &x, &y),
        ];
        let dep = build_dependency_graph(&seq);
        let mg = to_multigpu_graph(&dep, 2);
        let halos = mg.nodes().iter().filter(|n| n.is_halo()).count();
        assert_eq!(halos, 1);
    }

    #[test]
    fn halo_reinserted_after_write() {
        // Write between stencils invalidates the halo.
        let (g, x, y, _) = fixtures(2);
        let seq = vec![
            ops::set_value(&g, &x, 1.0),
            laplace(&g, &x, &y),
            ops::set_value(&g, &x, 2.0),
            laplace(&g, &x, &y),
        ];
        let dep = build_dependency_graph(&seq);
        let mg = to_multigpu_graph(&dep, 2);
        let halos = mg.nodes().iter().filter(|n| n.is_halo()).count();
        assert_eq!(halos, 2);
        // The second write must wait for the first stencil's read of x
        // (WaR edge), which transitively orders the second halo after it.
        let second_writer = mg
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.name.starts_with("set"))
            .map(|(i, _)| i)
            .max()
            .unwrap();
        let first_stencil = mg.nodes().iter().position(|n| n.name == "laplace").unwrap();
        assert!(mg
            .edges()
            .iter()
            .any(|e| e.from == first_stencil && e.to == second_writer && e.kind == EdgeKind::WaR));
    }

    #[test]
    fn redundant_map_to_dot_edge_removed() {
        // Paper Fig. 4c: the axpy→dot dependency is removed as redundant.
        let (g, x, y, dot_s) = fixtures(2);
        let axpy = ops::axpy_const(&g, 1.0, &y, &x); // writes x, reads y
        let lap = laplace(&g, &x, &y); // reads x (stencil), writes y
        let dotc = ops::dot(&g, &x, &y, &dot_s); // reads x and y
        let dep = build_dependency_graph(&[axpy, lap, dotc]);
        let mg = to_multigpu_graph(&dep, 2);
        let axpy_id = mg
            .nodes()
            .iter()
            .position(|n| n.name.starts_with("axpy"))
            .unwrap();
        let dot_id = mg
            .nodes()
            .iter()
            .position(|n| n.name.starts_with("dot"))
            .unwrap();
        assert!(
            !mg.edges()
                .iter()
                .any(|e| e.from == axpy_id && e.to == dot_id),
            "axpy→dot is transitively implied and should be removed"
        );
    }
}
