//! Overlap of computation and communication (paper §V-B).
//!
//! OCC works by splitting launches into an **internal** half (cells whose
//! stencil neighbourhood is partition-local) and a **boundary** half
//! (cells that need halo data), so halo transfers can run while internal
//! cells compute:
//!
//! * **Standard** — split every stencil node fed by a halo update. The
//!   boundary half waits for the halo; the internal half does not.
//! * **Extended** — additionally split the *map* nodes that produce the
//!   halo-exchanged field. The halo transfer then only waits for the
//!   boundary map half, overlapping with the internal map *and* the
//!   internal stencil.
//! * **Two-way Extended** — additionally split map/reduce nodes that
//!   consume the stencil's output. Their internal halves run during the
//!   halo too. A split reduction gains an internal→boundary *data* edge
//!   because both halves accumulate into the same per-device partials.
//!
//! Scheduling hints (orange arrows in the paper's Fig. 4d) bias the final
//! task order: boundary maps launch before internal maps (so the halo
//! starts early), internal stencil/reduce halves launch before boundary
//! halves (so the stream isn't blocked waiting on the halo).

use std::collections::{HashMap, HashSet};

use neon_set::{ComputePattern, Container, ContainerKind, DataUid, DataView};

use crate::graph::{Edge, EdgeKind, Graph, Node, NodeId, NodeKind};

/// The OCC optimization level of a skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OccLevel {
    /// No overlap: halo updates serialize with computation.
    None,
    /// Split stencil nodes (the classic technique).
    #[default]
    Standard,
    /// Also split map nodes feeding the halo-exchanged fields.
    Extended,
    /// Also split map/reduce nodes consuming the stencil output.
    TwoWayExtended,
}

impl OccLevel {
    /// All levels, for sweeps.
    pub const ALL: [OccLevel; 4] = [
        OccLevel::None,
        OccLevel::Standard,
        OccLevel::Extended,
        OccLevel::TwoWayExtended,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            OccLevel::None => "no-OCC",
            OccLevel::Standard => "OCC",
            OccLevel::Extended => "eOCC",
            OccLevel::TwoWayExtended => "2-eOCC",
        }
    }
}

impl std::fmt::Display for OccLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[derive(Clone, Copy)]
enum Mapped {
    One(NodeId),
    Two { int: NodeId, bnd: NodeId },
}

fn accesses_via_stencil(c: &Container, uid: DataUid) -> bool {
    c.accesses()
        .iter()
        .any(|a| a.uid == uid && a.pattern == ComputePattern::Stencil)
}

fn is_splittable_compute(node: &Node) -> bool {
    // Temporal super-steps iterate an *expanded* interior whose ghost zone
    // shrinks per rep — there is no Internal/Boundary decomposition of that
    // footprint, so OCC never splits them.
    let temporal = node
        .container()
        .map(Container::is_temporal)
        .unwrap_or(false);
    !temporal
        && matches!(
            &node.kind,
            NodeKind::Compute {
                view: DataView::Standard,
                ..
            }
        )
}

/// Apply an OCC level to a multi-GPU graph, producing the optimized graph.
pub fn apply_occ(g: &Graph, level: OccLevel) -> Graph {
    if level == OccLevel::None {
        return g.clone();
    }

    // --- choose the nodes to split -------------------------------------
    let halo_nodes: Vec<NodeId> = (0..g.len()).filter(|&i| g.node(i).is_halo()).collect();

    // Stencil nodes fed by a halo update.
    let mut stencil_splits: HashSet<NodeId> = HashSet::new();
    for &h in &halo_nodes {
        for e in g.data_children(h) {
            let n = g.node(e.to);
            if is_splittable_compute(n)
                && n.container().map(Container::kind) == Some(ContainerKind::Stencil)
            {
                stencil_splits.insert(e.to);
            }
        }
    }

    // Extended: map nodes feeding those halos.
    let mut map_splits: HashSet<NodeId> = HashSet::new();
    if matches!(level, OccLevel::Extended | OccLevel::TwoWayExtended) {
        for &h in &halo_nodes {
            let feeds_split = g.data_children(h).any(|e| stencil_splits.contains(&e.to));
            if !feeds_split {
                continue;
            }
            for e in g.data_parents(h) {
                if e.kind != EdgeKind::RaW {
                    continue;
                }
                let n = g.node(e.from);
                if is_splittable_compute(n)
                    && n.container().map(Container::kind) == Some(ContainerKind::Map)
                {
                    map_splits.insert(e.from);
                }
            }
        }
    }

    // Two-way: map/reduce consumers of split stencils.
    let mut succ_splits: HashSet<NodeId> = HashSet::new();
    if level == OccLevel::TwoWayExtended {
        for &s in &stencil_splits {
            for e in g.data_children(s) {
                if e.kind != EdgeKind::RaW {
                    continue;
                }
                let id = e.to;
                if stencil_splits.contains(&id) || map_splits.contains(&id) {
                    continue;
                }
                let n = g.node(id);
                // A fused node containing a reduction is never split: its
                // member kernels interleave per cell, so an int/bnd split
                // would reorder the accumulation relative to the unfused
                // sequence and break fusion's bit-identity guarantee.
                let fused_reduce = n
                    .container()
                    .map(|c| c.is_fused() && c.is_reduce())
                    .unwrap_or(false);
                if is_splittable_compute(n)
                    && !fused_reduce
                    && matches!(
                        n.container().map(Container::kind),
                        Some(ContainerKind::Map) | Some(ContainerKind::Reduce)
                    )
                {
                    succ_splits.insert(id);
                }
            }
        }
    }

    // --- build the split graph -----------------------------------------
    let mut out = Graph::new();
    let mut mapping: HashMap<NodeId, Mapped> = HashMap::new();

    for (id, node) in g.nodes().iter().enumerate() {
        let split =
            stencil_splits.contains(&id) || map_splits.contains(&id) || succ_splits.contains(&id);
        if !split {
            let nid = out.add_node(node.clone());
            mapping.insert(id, Mapped::One(nid));
            continue;
        }
        let NodeKind::Compute {
            container,
            reduce_init,
            reduce_finalize,
            ..
        } = &node.kind
        else {
            unreachable!("only Standard compute nodes are split");
        };
        let make = |view: DataView, init: bool, fin: bool| Node {
            name: format!("{}.{}", node.name, view.label()),
            kind: NodeKind::Compute {
                container: container.clone(),
                view,
                reduce_init: init,
                reduce_finalize: fin,
            },
            source: node.source,
            fused_sources: node.fused_sources.clone(),
        };
        // Boundary maps go first in id order so ties in the final BFS
        // ordering favour them; internal halves first for stencil/reduce.
        let boundary_first = map_splits.contains(&id);
        let (int, bnd) = if boundary_first {
            let bnd = out.add_node(make(DataView::Boundary, false, false));
            let int = out.add_node(make(DataView::Internal, *reduce_init, *reduce_finalize));
            (int, bnd)
        } else {
            let int = out.add_node(make(DataView::Internal, *reduce_init, false));
            let bnd = out.add_node(make(DataView::Boundary, false, *reduce_finalize));
            (int, bnd)
        };
        mapping.insert(id, Mapped::Two { int, bnd });

        if container.is_reduce() && !boundary_first {
            // Both halves accumulate into the same partials: serialize.
            out.add_edge(Edge {
                from: int,
                to: bnd,
                kind: EdgeKind::RaW,
                data: None,
            });
        }
        if boundary_first {
            out.add_edge(Edge {
                from: bnd,
                to: int,
                kind: EdgeKind::Sched,
                data: None,
            });
        } else {
            out.add_edge(Edge {
                from: int,
                to: bnd,
                kind: EdgeKind::Sched,
                data: None,
            });
        }
    }

    // --- rewire edges ----------------------------------------------------
    for e in g.edges() {
        let mu = mapping[&e.from];
        let mv = mapping[&e.to];
        let mut push = |from: NodeId, to: NodeId| {
            if from != to {
                out.add_edge(Edge {
                    from,
                    to,
                    kind: e.kind,
                    data: e.data,
                });
            }
        };
        match (mu, mv) {
            (Mapped::One(a), Mapped::One(b)) => push(a, b),
            (Mapped::Two { int, bnd }, Mapped::One(b)) => {
                if g.node(e.to).is_halo() {
                    // The halo reads (RaW) or overwrites data read by (WaR)
                    // boundary-region cells only: the internal half is
                    // independent — this is what creates the overlap window.
                    push(bnd, b);
                } else {
                    push(int, b);
                    push(bnd, b);
                }
            }
            (Mapped::One(a), Mapped::Two { int, bnd }) => {
                if g.node(e.from).is_halo() {
                    // Only boundary cells consume halo data.
                    push(a, bnd);
                } else {
                    push(a, int);
                    push(a, bnd);
                }
            }
            (Mapped::Two { int: ui, bnd: ub }, Mapped::Two { int: vi, bnd: vb }) => {
                let nonlocal = match e.data {
                    Some(uid) => {
                        let u_st = g
                            .node(e.from)
                            .container()
                            .map(|c| accesses_via_stencil(c, uid))
                            .unwrap_or(true);
                        let v_st = g
                            .node(e.to)
                            .container()
                            .map(|c| accesses_via_stencil(c, uid))
                            .unwrap_or(true);
                        u_st || v_st
                    }
                    None => true,
                };
                if nonlocal {
                    push(ui, vi);
                    push(ui, vb);
                    push(ub, vi);
                    push(ub, vb);
                } else {
                    // Cell-local dependency: classes align one-to-one.
                    push(ui, vi);
                    push(ub, vb);
                }
            }
        }
    }

    // Paper Fig. 4d hint: launch the successor-internal halves before the
    // stencil-boundary halves, so they fill the halo-wait gap on the
    // compute stream. Added after rewiring so we can refuse hints that
    // would close a cycle (possible when the successor also write-
    // conflicts with the stencil's input, creating S_bnd → R_int data
    // edges).
    if level == OccLevel::TwoWayExtended {
        let reaches = |g: &Graph, from: NodeId, to: NodeId| -> bool {
            let mut stack = vec![from];
            let mut seen = vec![false; g.len()];
            while let Some(u) = stack.pop() {
                if u == to {
                    return true;
                }
                if std::mem::replace(&mut seen[u], true) {
                    continue;
                }
                for e in g.edges() {
                    if e.from == u && !seen[e.to] {
                        stack.push(e.to);
                    }
                }
            }
            false
        };
        for &sid in &stencil_splits {
            let Mapped::Two { bnd: s_bnd, .. } = mapping[&sid] else {
                continue;
            };
            for e in g.data_children(sid) {
                if succ_splits.contains(&e.to) {
                    if let Mapped::Two { int: r_int, .. } = mapping[&e.to] {
                        if !reaches(&out, s_bnd, r_int) {
                            out.add_edge(Edge {
                                from: r_int,
                                to: s_bnd,
                                kind: EdgeKind::Sched,
                                data: None,
                            });
                        }
                    }
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_dependency_graph;
    use crate::multigpu::to_multigpu_graph;
    use neon_domain::{
        ops, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike, MemLayout,
        ScalarSet, Stencil, StorageMode,
    };
    use neon_sys::Backend;

    struct Fx {
        g: DenseGrid,
        x: Field<f64, DenseGrid>,
        y: Field<f64, DenseGrid>,
        dot: ScalarSet<f64>,
    }

    fn fixtures(n_dev: usize) -> Fx {
        let b = Backend::dgx_a100(n_dev);
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 16), &[&s], StorageMode::Real).unwrap();
        Fx {
            x: Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap(),
            y: Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap(),
            dot: ScalarSet::<f64>::new(n_dev, "dot", 0.0, |a, b| a + b),
            g,
        }
    }

    fn laplace(fx: &Fx) -> neon_set::Container {
        let (xc, yc) = (fx.x.clone(), fx.y.clone());
        neon_set::Container::compute("laplace", fx.g.as_space(), move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |c| {
                let mut s = 0.0;
                for slot in 0..6 {
                    s += xv.ngh(c, slot, 0);
                }
                yv.set(c, 0, s);
            })
        })
    }

    /// map (writes x) → stencil (reads x, writes y) → dot(y).
    fn fig4_graph(fx: &Fx) -> Graph {
        let seq = vec![
            ops::set_value(&fx.g, &fx.x, 1.0),
            laplace(fx),
            ops::dot(&fx.g, &fx.y, &fx.y, &fx.dot),
        ];
        to_multigpu_graph(&build_dependency_graph(&seq), fx.g.num_partitions())
    }

    fn names(g: &Graph) -> Vec<String> {
        g.nodes().iter().map(|n| n.name.clone()).collect()
    }

    fn id(g: &Graph, name: &str) -> NodeId {
        g.nodes()
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("node {name} not in {:?}", names(g)))
    }

    fn has_edge(g: &Graph, from: &str, to: &str) -> bool {
        let (f, t) = (id(g, from), id(g, to));
        g.edges()
            .iter()
            .any(|e| e.from == f && e.to == t && e.kind.is_data())
    }

    #[test]
    fn none_level_is_identity() {
        let fx = fixtures(2);
        let mg = fig4_graph(&fx);
        let occ = apply_occ(&mg, OccLevel::None);
        assert_eq!(occ.len(), mg.len());
    }

    #[test]
    fn standard_splits_only_stencil() {
        let fx = fixtures(2);
        let occ = apply_occ(&fig4_graph(&fx), OccLevel::Standard);
        let n = names(&occ);
        assert!(n.contains(&"laplace.int".to_string()), "{n:?}");
        assert!(n.contains(&"laplace.bnd".to_string()));
        assert!(n.iter().any(|s| s.starts_with("set(x)")));
        assert!(!n.iter().any(|s| s.starts_with("set(x).")));
        // Halo feeds only the boundary half.
        assert!(has_edge(&occ, "halo(x)", "laplace.bnd"));
        assert!(!has_edge(&occ, "halo(x)", "laplace.int"));
        // Both halves feed the (unsplit) dot.
        assert!(has_edge(&occ, "laplace.int", "dot(y,y)"));
        assert!(has_edge(&occ, "laplace.bnd", "dot(y,y)"));
    }

    #[test]
    fn extended_splits_preceding_map() {
        let fx = fixtures(2);
        let occ = apply_occ(&fig4_graph(&fx), OccLevel::Extended);
        let n = names(&occ);
        assert!(n.contains(&"set(x).bnd".to_string()), "{n:?}");
        assert!(n.contains(&"set(x).int".to_string()));
        // The halo now depends only on the boundary map half.
        assert!(has_edge(&occ, "set(x).bnd", "halo(x)"));
        assert!(!has_edge(&occ, "set(x).int", "halo(x)"));
        // Stencil halves still read the whole field: both map halves feed
        // both stencil halves (stencil access is non-local).
        assert!(has_edge(&occ, "set(x).int", "laplace.int"));
        assert!(has_edge(&occ, "set(x).bnd", "laplace.int"));
        assert!(has_edge(&occ, "set(x).int", "laplace.bnd"));
    }

    #[test]
    fn two_way_splits_following_reduce_with_serial_edge() {
        let fx = fixtures(2);
        let occ = apply_occ(&fig4_graph(&fx), OccLevel::TwoWayExtended);
        let n = names(&occ);
        assert!(n.contains(&"dot(y,y).int".to_string()), "{n:?}");
        assert!(n.contains(&"dot(y,y).bnd".to_string()));
        // Aligned edges: stencil.int → dot.int, stencil.bnd → dot.bnd
        // (dot reads y cell-locally).
        assert!(has_edge(&occ, "laplace.int", "dot(y,y).int"));
        assert!(has_edge(&occ, "laplace.bnd", "dot(y,y).bnd"));
        assert!(!has_edge(&occ, "laplace.bnd", "dot(y,y).int"));
        // Reduce halves are serialized by a data edge (paper §V-B).
        assert!(has_edge(&occ, "dot(y,y).int", "dot(y,y).bnd"));
    }

    #[test]
    fn reduce_flags_assigned_to_halves() {
        let fx = fixtures(2);
        let occ = apply_occ(&fig4_graph(&fx), OccLevel::TwoWayExtended);
        let int_node = occ.node(id(&occ, "dot(y,y).int"));
        let bnd_node = occ.node(id(&occ, "dot(y,y).bnd"));
        match (&int_node.kind, &bnd_node.kind) {
            (
                NodeKind::Compute {
                    reduce_init: ii,
                    reduce_finalize: fi,
                    ..
                },
                NodeKind::Compute {
                    reduce_init: ib,
                    reduce_finalize: fb,
                    ..
                },
            ) => {
                assert!(*ii && !*fi, "internal initializes");
                assert!(!*ib && *fb, "boundary finalizes");
            }
            _ => panic!("expected compute nodes"),
        }
    }

    #[test]
    fn scheduling_hints_present() {
        let fx = fixtures(2);
        let occ = apply_occ(&fig4_graph(&fx), OccLevel::Extended);
        let hints: Vec<_> = occ
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Sched)
            .collect();
        assert!(!hints.is_empty());
        // Boundary map before internal map.
        let (mb, mi) = (id(&occ, "set(x).bnd"), id(&occ, "set(x).int"));
        assert!(hints.iter().any(|e| e.from == mb && e.to == mi));
        // Internal stencil before boundary stencil.
        let (si, sb) = (id(&occ, "laplace.int"), id(&occ, "laplace.bnd"));
        assert!(hints.iter().any(|e| e.from == si && e.to == sb));
    }

    #[test]
    fn single_device_graph_not_split() {
        let fx = fixtures(1);
        let mg = fig4_graph(&fx);
        let occ = apply_occ(&mg, OccLevel::TwoWayExtended);
        assert_eq!(occ.len(), mg.len(), "no halo → nothing to split");
    }

    #[test]
    fn occ_graph_is_acyclic() {
        let fx = fixtures(4);
        for level in OccLevel::ALL {
            let occ = apply_occ(&fig4_graph(&fx), level);
            let order = occ.topo_order(); // panics on cycles
            assert_eq!(order.len(), occ.len());
        }
    }
}
