//! The data dependency graph (paper §V-A).
//!
//! Nodes are containers (plus halo-update and sync nodes added by the
//! multi-GPU transform); edges are read-after-write, write-after-read and
//! write-after-write dependencies between containers that touch the same
//! multi-GPU data object — discovered entirely from the access records the
//! Loaders captured, with no compiler support.
//!
//! Scheduling *hints* (paper's orange arrows) are a separate edge kind:
//! they influence only the final task ordering, never correctness.

use std::collections::HashMap;
use std::sync::Arc;

use neon_set::{Container, DataUid, DataView, HaloExchange};

/// Index of a node within a [`Graph`].
pub type NodeId = usize;

/// What a graph node executes.
#[derive(Clone)]
pub enum NodeKind {
    /// A container launch over a data view.
    Compute {
        /// The container.
        container: Container,
        /// The view it iterates (Standard, or Internal/Boundary after an
        /// OCC split).
        view: DataView,
        /// Whether this launch resets reduction partials first.
        reduce_init: bool,
        /// Whether this launch folds partials into host values after.
        reduce_finalize: bool,
    },
    /// A halo update of one field.
    Halo {
        /// The exchange implementation.
        exchange: Arc<dyn HaloExchange>,
    },
    /// A host-side step (scalar algebra between device phases).
    Host {
        /// The host container.
        container: Container,
    },
    /// A collective communication step (all-reduce of a reduce container's
    /// partials), scheduled by `neon-comm` over the backend's topology.
    Collective {
        /// The reduce container whose partials are combined.
        container: Container,
        /// Total payload in bytes (8 bytes per reduced scalar).
        bytes: u64,
    },
}

impl std::fmt::Debug for NodeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeKind::Compute {
                container, view, ..
            } => write!(f, "Compute({}, {})", container.name(), view.label()),
            NodeKind::Halo { exchange } => write!(f, "Halo({})", exchange.data_name()),
            NodeKind::Host { container } => write!(f, "Host({})", container.name()),
            NodeKind::Collective { container, bytes } => {
                write!(f, "Collective({}, {bytes} B)", container.name())
            }
        }
    }
}

/// One node of the execution graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Display name (container name plus view suffix).
    pub name: String,
    /// Payload.
    pub kind: NodeKind,
    /// Index of the originating container in the compiled sequence (`None`
    /// for synthesized nodes such as halo updates). Plan rebinding uses it
    /// to swap a cached plan's containers for a new instance's.
    pub source: Option<usize>,
    /// For nodes produced by fusion: the sequence indices of every member
    /// container, in fused order (`source` is `None` then). Plan rebinding
    /// re-fuses the new instance's containers from this list; IR dumps
    /// render it as provenance.
    pub fused_sources: Vec<usize>,
}

impl Node {
    /// A node with no container provenance.
    pub fn new(name: impl Into<String>, kind: NodeKind) -> Self {
        Node {
            name: name.into(),
            kind,
            source: None,
            fused_sources: Vec::new(),
        }
    }

    /// A node originating from `containers[source]` of the compiled
    /// sequence.
    pub fn with_source(name: impl Into<String>, kind: NodeKind, source: usize) -> Self {
        Node {
            name: name.into(),
            kind,
            source: Some(source),
            fused_sources: Vec::new(),
        }
    }

    /// A fused node originating from `containers[i]` for each member `i`.
    pub fn with_fused_sources(
        name: impl Into<String>,
        kind: NodeKind,
        members: Vec<usize>,
    ) -> Self {
        Node {
            name: name.into(),
            kind,
            source: None,
            fused_sources: members,
        }
    }

    /// The node's container, if it has one.
    pub fn container(&self) -> Option<&Container> {
        match &self.kind {
            NodeKind::Compute { container, .. }
            | NodeKind::Host { container }
            | NodeKind::Collective { container, .. } => Some(container),
            NodeKind::Halo { .. } => None,
        }
    }

    /// The data view of a compute node (Standard otherwise).
    pub fn view(&self) -> DataView {
        match &self.kind {
            NodeKind::Compute { view, .. } => *view,
            _ => DataView::Standard,
        }
    }

    /// Whether this is a halo-update node.
    pub fn is_halo(&self) -> bool {
        matches!(self.kind, NodeKind::Halo { .. })
    }

    /// Whether this is a collective communication node.
    pub fn is_collective(&self) -> bool {
        matches!(self.kind, NodeKind::Collective { .. })
    }
}

/// The dependency type of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Read-after-write: consumer must see producer's data.
    RaW,
    /// Write-after-read: writer must wait for earlier readers.
    WaR,
    /// Write-after-write: order of writes preserved.
    WaW,
    /// Scheduling hint (ordering preference, not a data dependency).
    Sched,
}

impl EdgeKind {
    /// Whether the edge constrains correctness (vs. a hint).
    pub fn is_data(self) -> bool {
        !matches!(self, EdgeKind::Sched)
    }
}

/// A directed edge `from → to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Producer / predecessor node.
    pub from: NodeId,
    /// Consumer / successor node.
    pub to: NodeId,
    /// Dependency type.
    pub kind: EdgeKind,
    /// The data object the dependency is about (None for hints).
    pub data: Option<DataUid>,
}

/// A DAG of containers, halo updates and host steps.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Append a node, returning its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Append an edge if an identical one is not already present.
    pub fn add_edge(&mut self, edge: Edge) {
        assert!(edge.from < self.nodes.len() && edge.to < self.nodes.len());
        assert_ne!(
            edge.from, edge.to,
            "self edge on {}",
            self.nodes[edge.from].name
        );
        if !self.edges.contains(&edge) {
            self.edges.push(edge);
        }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable access to a node (for lowering passes).
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Mutable access to the edge list (for lowering passes). Callers must
    /// preserve acyclicity and should call [`Graph::dedup_edges`] after
    /// re-pointing edges.
    pub(crate) fn edges_mut(&mut self) -> &mut Vec<Edge> {
        &mut self.edges
    }

    /// Drop duplicate edges (re-pointing can alias previously distinct
    /// edges onto the same endpoints).
    pub(crate) fn dedup_edges(&mut self) {
        let mut seen = std::collections::HashSet::new();
        self.edges.retain(|e| seen.insert(*e));
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Data-dependency parents of `n` (edges into `n`, hints excluded).
    pub fn data_parents(&self, n: NodeId) -> impl Iterator<Item = &Edge> {
        self.edges
            .iter()
            .filter(move |e| e.to == n && e.kind.is_data())
    }

    /// Data-dependency children of `n`.
    pub fn data_children(&self, n: NodeId) -> impl Iterator<Item = &Edge> {
        self.edges
            .iter()
            .filter(move |e| e.from == n && e.kind.is_data())
    }

    /// All parents including scheduling hints.
    pub fn all_parents(&self, n: NodeId) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.to == n)
    }

    /// BFS levels over the chosen edge set: each level contains nodes whose
    /// parents all sit in earlier levels (paper Fig. 5). Panics on cycles.
    pub fn bfs_levels(&self, include_hints: bool) -> Vec<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.kind.is_data() || include_hints {
                indeg[e.to] += 1;
            }
        }
        let mut levels = Vec::new();
        let mut frontier: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = frontier.len();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for e in &self.edges {
                    if e.from == u && (e.kind.is_data() || include_hints) {
                        indeg[e.to] -= 1;
                        if indeg[e.to] == 0 {
                            next.push(e.to);
                            seen += 1;
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            levels.push(std::mem::take(&mut frontier));
            frontier = next;
        }
        assert_eq!(seen, n, "cycle detected in execution graph");
        levels
    }

    /// A topological order over data + hint edges.
    pub fn topo_order(&self) -> Vec<NodeId> {
        self.bfs_levels(true).into_iter().flatten().collect()
    }

    /// Render the graph in Graphviz DOT format: compute nodes as boxes
    /// (internal/boundary halves tinted), halo nodes as ellipses, host
    /// nodes as diamonds; data edges solid (WaR/WaW dashed), scheduling
    /// hints dotted orange — matching the paper's figure conventions.
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{title}\" {{");
        let _ = writeln!(out, "  rankdir=TB; node [fontname=\"monospace\"];");
        for (i, n) in self.nodes.iter().enumerate() {
            let (shape, fill) = match &n.kind {
                NodeKind::Compute { view, .. } => (
                    "box",
                    match view {
                        neon_set::DataView::Standard => "white",
                        neon_set::DataView::Internal => "palegreen",
                        neon_set::DataView::Boundary => "lightpink",
                    },
                ),
                NodeKind::Halo { .. } => ("ellipse", "lightblue"),
                NodeKind::Host { .. } => ("diamond", "lightyellow"),
                NodeKind::Collective { .. } => ("hexagon", "lightcoral"),
            };
            let _ = writeln!(
                out,
                "  n{i} [label=\"{}\", shape={shape}, style=filled, fillcolor={fill}];",
                n.name.replace('"', "'")
            );
        }
        for e in &self.edges {
            let style = match e.kind {
                EdgeKind::RaW => "[color=black]",
                EdgeKind::WaR | EdgeKind::WaW => "[color=gray, style=dashed]",
                EdgeKind::Sched => "[color=orange, style=dotted]",
            };
            let _ = writeln!(out, "  n{} -> n{} {style};", e.from, e.to);
        }
        out.push_str("}\n");
        out
    }

    /// Remove data edges implied by transitivity (paper §V-B removes the
    /// map→dot edge as redundant). Hints are never removed.
    pub fn transitive_reduce(&mut self) {
        let n = self.nodes.len();
        // reach[u] = set of nodes reachable from u via data edges.
        let order = self.bfs_levels(false);
        let mut reach: Vec<std::collections::HashSet<NodeId>> =
            vec![std::collections::HashSet::new(); n];
        for level in order.iter().rev() {
            for &u in level {
                let children: Vec<NodeId> = self
                    .edges
                    .iter()
                    .filter(|e| e.from == u && e.kind.is_data())
                    .map(|e| e.to)
                    .collect();
                let mut r = std::collections::HashSet::new();
                for c in children {
                    r.insert(c);
                    r.extend(reach[c].iter().copied());
                }
                reach[u] = r;
            }
        }
        let edges = std::mem::take(&mut self.edges);
        self.edges = edges
            .into_iter()
            .filter(|e| {
                if !e.kind.is_data() {
                    return true;
                }
                // Redundant if another node lies on a from→…→to path.
                // Halo nodes are not valid intermediates: OCC later narrows
                // halo edges to boundary halves, so a path through a halo
                // node cannot substitute for a direct data dependency.
                let redundant = self.nodes.iter().enumerate().any(|(m, node)| {
                    m != e.to
                        && m != e.from
                        && !node.is_halo()
                        && reach[e.from].contains(&m)
                        && reach[m].contains(&e.to)
                });
                !redundant
            })
            .collect();
    }
}

/// Build the data dependency graph of a container sequence (paper §V-A).
pub fn build_dependency_graph(containers: &[Container]) -> Graph {
    let mut g = Graph::new();
    let mut last_writer: HashMap<DataUid, NodeId> = HashMap::new();
    let mut readers_since_write: HashMap<DataUid, Vec<NodeId>> = HashMap::new();

    for (ci, c) in containers.iter().enumerate() {
        let kind = match c.kind() {
            neon_set::ContainerKind::Host => NodeKind::Host {
                container: c.clone(),
            },
            _ => NodeKind::Compute {
                container: c.clone(),
                view: DataView::Standard,
                reduce_init: c.is_reduce(),
                reduce_finalize: c.is_reduce(),
            },
        };
        let id = g.add_node(Node::with_source(c.name(), kind, ci));
        for a in c.accesses() {
            if a.mode.reads() {
                if let Some(&w) = last_writer.get(&a.uid) {
                    if w != id {
                        g.add_edge(Edge {
                            from: w,
                            to: id,
                            kind: EdgeKind::RaW,
                            data: Some(a.uid),
                        });
                    }
                }
            }
            if a.mode.writes() {
                for &r in readers_since_write.get(&a.uid).into_iter().flatten() {
                    if r != id {
                        g.add_edge(Edge {
                            from: r,
                            to: id,
                            kind: EdgeKind::WaR,
                            data: Some(a.uid),
                        });
                    }
                }
                if let Some(&w) = last_writer.get(&a.uid) {
                    if w != id {
                        g.add_edge(Edge {
                            from: w,
                            to: id,
                            kind: EdgeKind::WaW,
                            data: Some(a.uid),
                        });
                    }
                }
            }
        }
        // Update tracking after all accesses are wired.
        for a in c.accesses() {
            if a.mode.writes() {
                last_writer.insert(a.uid, id);
                readers_since_write.insert(a.uid, Vec::new());
            }
            if a.mode.reads() {
                readers_since_write.entry(a.uid).or_default().push(id);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_domain::{
        ops, DenseGrid, Dim3, Field, GridLike as _, MemLayout, ScalarSet, Stencil, StorageMode,
    };
    use neon_sys::Backend;

    fn fixtures() -> (
        DenseGrid,
        Field<f64, DenseGrid>,
        Field<f64, DenseGrid>,
        ScalarSet<f64>,
    ) {
        let b = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        let dot = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);
        (g, x, y, dot)
    }

    #[test]
    fn raw_edge_between_writer_and_reader() {
        let (g, x, y, _) = fixtures();
        let c1 = ops::copy(&g, &x, &y); // writes y
        let c2 = ops::axpy_const(&g, 1.0, &y, &x); // reads y, writes x
        let graph = build_dependency_graph(&[c1, c2]);
        assert_eq!(graph.len(), 2);
        assert!(graph.edges().iter().any(|e| e.from == 0
            && e.to == 1
            && e.kind == EdgeKind::RaW
            && e.data == Some(y.uid())));
    }

    #[test]
    fn war_edge_between_reader_and_writer() {
        let (g, x, y, _) = fixtures();
        let c1 = ops::axpy_const(&g, 1.0, &x, &y); // reads x
        let c2 = ops::set_value(&g, &x, 0.0); // writes x
        let graph = build_dependency_graph(&[c1, c2]);
        assert!(graph
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == EdgeKind::WaR));
    }

    #[test]
    fn waw_edge_between_writers() {
        let (g, x, _, _) = fixtures();
        let c1 = ops::set_value(&g, &x, 1.0);
        let c2 = ops::set_value(&g, &x, 2.0);
        let graph = build_dependency_graph(&[c1, c2]);
        assert!(graph
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == EdgeKind::WaW));
    }

    #[test]
    fn independent_containers_have_no_edges() {
        let (g, x, y, _) = fixtures();
        let c1 = ops::set_value(&g, &x, 1.0);
        let c2 = ops::set_value(&g, &y, 2.0);
        let graph = build_dependency_graph(&[c1, c2]);
        assert!(graph.edges().is_empty());
        let levels = graph.bfs_levels(false);
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].len(), 2);
    }

    #[test]
    fn paper_fig4_example_graph() {
        // axpy (map on X,Y) → laplace (stencil X→Y? in the paper: laplace
        // reads X writes L) → dot(L,L).
        let (g, x, y, dot_s) = fixtures();
        let axpy = ops::axpy_const(&g, 2.0, &y, &x); // writes x
        let laplace = {
            let (xc, yc) = (x.clone(), y.clone());
            neon_set::Container::compute("laplace", g.as_space(), move |ldr| {
                use neon_domain::{FieldRead as _, FieldStencil as _, FieldWrite as _};
                let xv = ldr.read_stencil(&xc);
                let yv = ldr.write(&yc);
                Box::new(move |c| {
                    let mut s = 0.0;
                    for slot in 0..6 {
                        s += xv.ngh(c, slot, 0);
                    }
                    yv.set(c, 0, s - 6.0 * xv.at(c, 0));
                })
            })
        };
        let dotc = ops::dot(&g, &y, &y, &dot_s);
        let graph = build_dependency_graph(&[axpy, laplace, dotc]);
        assert_eq!(graph.len(), 3);
        // axpy → laplace RaW on x; laplace also WaR on y (axpy read y).
        assert!(graph.edges().iter().any(|e| e.from == 0
            && e.to == 1
            && e.kind == EdgeKind::RaW
            && e.data == Some(x.uid())));
        assert!(graph.edges().iter().any(|e| e.from == 0
            && e.to == 1
            && e.kind == EdgeKind::WaR
            && e.data == Some(y.uid())));
        // laplace → dot RaW on y.
        assert!(graph.edges().iter().any(|e| e.from == 1
            && e.to == 2
            && e.kind == EdgeKind::RaW
            && e.data == Some(y.uid())));
    }

    #[test]
    fn transitive_reduction_removes_redundant_edge() {
        let (g, x, y, dot_s) = fixtures();
        // c0 writes x; c1 reads x writes y; c2 reads x AND y.
        let c0 = ops::set_value(&g, &x, 1.0);
        let c1 = ops::copy(&g, &x, &y);
        let c2 = ops::dot(&g, &x, &y, &dot_s);
        let mut graph = build_dependency_graph(&[c0, c1, c2]);
        assert!(graph
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 2 && e.kind.is_data()));
        graph.transitive_reduce();
        // 0→2 should be gone: implied through 0→1→2.
        assert!(!graph.edges().iter().any(|e| e.from == 0 && e.to == 2));
        assert!(graph.edges().iter().any(|e| e.from == 0 && e.to == 1));
        assert!(graph.edges().iter().any(|e| e.from == 1 && e.to == 2));
    }

    #[test]
    fn bfs_levels_respect_dependencies() {
        let (g, x, y, dot_s) = fixtures();
        let c0 = ops::set_value(&g, &x, 1.0);
        let c1 = ops::copy(&g, &x, &y);
        let c2 = ops::dot(&g, &x, &y, &dot_s);
        let graph = build_dependency_graph(&[c0, c1, c2]);
        let levels = graph.bfs_levels(false);
        assert_eq!(levels, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detection() {
        let mut g = Graph::new();
        let a = g.add_node(Node::new(
            "a",
            NodeKind::Host {
                container: Container::host("a", 1, |_| Box::new(|| {})),
            },
        ));
        let b = g.add_node(Node::new(
            "b",
            NodeKind::Host {
                container: Container::host("b", 1, |_| Box::new(|| {})),
            },
        ));
        g.add_edge(Edge {
            from: a,
            to: b,
            kind: EdgeKind::RaW,
            data: None,
        });
        g.add_edge(Edge {
            from: b,
            to: a,
            kind: EdgeKind::RaW,
            data: None,
        });
        g.bfs_levels(false);
    }

    #[test]
    fn duplicate_edges_deduped() {
        let (g, x, y, _) = fixtures();
        // axpy reads x twice conceptually (read + rw): edges dedupe.
        let c0 = ops::set_value(&g, &x, 1.0);
        let c1 = ops::axpy_const(&g, 1.0, &x, &y);
        let graph = build_dependency_graph(&[c0, c1]);
        let n = graph
            .edges()
            .iter()
            .filter(|e| e.from == 0 && e.to == 1 && e.kind == EdgeKind::RaW)
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn scalar_dependencies_tracked() {
        let (g, x, y, dot_s) = fixtures();
        let alpha = ScalarSet::<f64>::new(2, "alpha", 0.0, |a, b| a + b);
        let c_dot = ops::dot(&g, &x, &y, &dot_s); // writes dot_s
        let c_alpha = {
            let (d, a) = (dot_s.clone(), alpha.clone());
            Container::host("alpha", 2, move |ldr| {
                let dv = ldr.scalar_reader(&d);
                let aw = ldr.scalar_writer(&a);
                Box::new(move || aw.set(dv.get() * 2.0))
            })
        };
        let c_apply = ops::axpy_scalar(&g, &alpha, 1.0, &x, &y); // reads alpha
        let graph = build_dependency_graph(&[c_dot, c_alpha, c_apply]);
        // dot → alpha (RaW on dot scalar), alpha → apply (RaW on alpha).
        assert!(graph
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == EdgeKind::RaW));
        assert!(graph
            .edges()
            .iter()
            .any(|e| e.from == 1 && e.to == 2 && e.kind == EdgeKind::RaW));
    }
}
