//! Integration tests for the serving layer: bit-identity under
//! multiplexing, weighted fairness, admission shedding, device-loss
//! recovery, and cross-tenant plan sharing.

use neon_apps::JobSpec;
use neon_core::{OccLevel, SkeletonOptions};
use neon_serve::{
    solo_run_bits, DeviceLoss, JobRequest, LinkFault, SchedPolicy, ServeConfig, Server, TenantSpec,
};
use neon_sys::Backend;

fn options() -> SkeletonOptions {
    SkeletonOptions::with_occ(OccLevel::Standard)
}

fn poisson(dim: u32, iters: u64, rhs_seed: u64) -> JobSpec {
    JobSpec::Poisson {
        dim,
        iters,
        rhs_seed,
    }
}

fn lbm(dim: u32, iters: u64) -> JobSpec {
    JobSpec::Lbm { dim, iters }
}

/// A mixed request stream: two tenants interleaving Poisson and LBM jobs
/// of different sizes and device counts.
fn mixed_requests() -> Vec<JobRequest> {
    vec![
        JobRequest {
            tenant: 0,
            spec: poisson(8, 6, 11),
            ndev: 1,
            arrival_us: 0.0,
        },
        JobRequest {
            tenant: 1,
            spec: poisson(10, 5, 23),
            ndev: 2,
            arrival_us: 5.0,
        },
        JobRequest {
            tenant: 0,
            spec: lbm(6, 8),
            ndev: 1,
            arrival_us: 10.0,
        },
        JobRequest {
            tenant: 1,
            spec: poisson(8, 7, 31),
            ndev: 1,
            arrival_us: 12.0,
        },
        JobRequest {
            tenant: 0,
            spec: poisson(10, 4, 7),
            ndev: 2,
            arrival_us: 40.0,
        },
    ]
}

#[test]
fn multiplexed_jobs_are_bit_identical_to_solo_runs() {
    let fleet = Backend::dgx_a100(4);
    let mut server = Server::new(
        &fleet,
        vec![TenantSpec::new("a", 1.0), TenantSpec::new("b", 2.0)],
        ServeConfig {
            quantum_iters: 2,
            ..ServeConfig::default()
        },
    );
    let report = server.run(mixed_requests());

    assert_eq!(report.shed, 0);
    for o in &report.outcomes {
        assert!(o.completed, "every job should finish: {:?}", o.spec);
        let solo = solo_run_bits(
            &fleet,
            o.spec,
            o.first_ndev.expect("ran"),
            options(),
            &o.evictions,
        )
        .expect("solo replay");
        assert_eq!(
            o.result_bits,
            Some(solo),
            "multiplexed result must match solo run for {:?}",
            o.spec
        );
    }
    // The shared plan cache should have served repeat compiles: five jobs,
    // but only a handful of distinct (program, fingerprint) keys.
    assert!(
        report.cache_hits > 0,
        "expected cross-job plan-cache hits, got {} hits / {} misses",
        report.cache_hits,
        report.cache_misses
    );
}

#[test]
fn weighted_fair_queueing_tracks_weights() {
    let fleet = Backend::dgx_a100(2);
    // Two backlogged tenants, weight 1 vs 3, each submitting a long train
    // of identical single-device jobs at t=0: service should split ~1:3.
    let mut requests = Vec::new();
    for i in 0..8 {
        requests.push(JobRequest {
            tenant: 0,
            spec: poisson(8, 6, 100 + i),
            ndev: 1,
            arrival_us: 0.0,
        });
        requests.push(JobRequest {
            tenant: 1,
            spec: poisson(8, 6, 200 + i),
            ndev: 1,
            arrival_us: 0.0,
        });
    }
    let mut server = Server::new(
        &fleet,
        vec![TenantSpec::new("light", 1.0), TenantSpec::new("heavy", 3.0)],
        ServeConfig {
            queue_capacity: 64,
            quantum_iters: 2,
            ..ServeConfig::default()
        },
    );
    let report = server.run(requests);
    // Both tenants are fully served (equal finite demand), so *end-state*
    // service is equal by construction — weighted fairness shows up in
    // *when* service was delivered. The weight-3 tenant must drain its
    // jobs markedly earlier and wait less overall than the weight-1 one.
    let light = &report.tenants[0];
    let heavy = &report.tenants[1];
    assert!(light.jobs_completed == 8 && heavy.jobs_completed == 8);
    let mean_finish = |tenant: usize| -> f64 {
        let f: Vec<f64> = report
            .outcomes
            .iter()
            .filter(|o| o.tenant == tenant)
            .map(|o| o.finish_us.expect("completed"))
            .collect();
        f.iter().sum::<f64>() / f.len() as f64
    };
    assert!(
        mean_finish(1) * 1.2 < mean_finish(0),
        "heavy tenant should drain sooner: heavy {:.0}us vs light {:.0}us",
        mean_finish(1),
        mean_finish(0)
    );
    assert!(
        heavy.queue_wait_us < light.queue_wait_us,
        "heavy tenant waited {:.0}us, light {:.0}us",
        heavy.queue_wait_us,
        light.queue_wait_us
    );
}

#[test]
fn admission_control_sheds_past_queue_capacity() {
    let fleet = Backend::dgx_a100(2);
    // Ten simultaneous arrivals into a queue of 3: some must be shed, and
    // shed jobs never run.
    let requests: Vec<JobRequest> = (0..10)
        .map(|i| JobRequest {
            tenant: 0,
            spec: poisson(8, 4, i),
            ndev: 2,
            arrival_us: 0.0,
        })
        .collect();
    let mut server = Server::new(
        &fleet,
        vec![TenantSpec::new("only", 1.0)],
        ServeConfig {
            queue_capacity: 3,
            ..ServeConfig::default()
        },
    );
    let report = server.run(requests);
    assert!(report.shed > 0, "tiny queue must shed under a burst");
    assert_eq!(report.tenants[0].jobs_shed, report.shed);
    let completed = report.outcomes.iter().filter(|o| o.completed).count() as u64;
    assert_eq!(completed + report.shed, 10);
    for o in &report.outcomes {
        if !o.admitted {
            assert!(o.start_us.is_none() && o.result_bits.is_none());
        }
    }
}

#[test]
fn device_loss_survivors_match_solo_replay() {
    let fleet = Backend::dgx_a100(4);
    // A loss early enough that multi-device jobs are mid-flight. Device 1
    // dies; jobs pinned to it re-plan and must still produce solo bits.
    let requests = vec![
        JobRequest {
            tenant: 0,
            spec: poisson(10, 10, 5),
            ndev: 2,
            arrival_us: 0.0,
        },
        JobRequest {
            tenant: 1,
            spec: poisson(10, 10, 9),
            ndev: 2,
            arrival_us: 0.0,
        },
        JobRequest {
            tenant: 0,
            spec: lbm(6, 10),
            ndev: 1,
            arrival_us: 2.0,
        },
    ];
    let mut server = Server::new(
        &fleet,
        vec![TenantSpec::new("a", 1.0), TenantSpec::new("b", 1.0)],
        ServeConfig {
            quantum_iters: 3,
            device_loss: Some(DeviceLoss {
                at_us: 40.0,
                device: 1,
            }),
            ..ServeConfig::default()
        },
    );
    let report = server.run(requests);
    assert_eq!(report.device_losses, 1);
    let evicted: usize = report.outcomes.iter().map(|o| o.evictions.len()).sum();
    assert!(
        evicted > 0,
        "the loss must have forced at least one re-plan"
    );
    for o in &report.outcomes {
        assert!(o.completed, "every job must survive the loss: {:?}", o.spec);
        let solo = solo_run_bits(
            &fleet,
            o.spec,
            o.first_ndev.expect("ran"),
            options(),
            &o.evictions,
        )
        .expect("solo replay");
        assert_eq!(
            o.result_bits,
            Some(solo),
            "post-loss result must match eviction-replaying solo run for {:?}",
            o.spec
        );
    }
    // Aborted quantum time is charged as waste, not service.
    let wasted: f64 = report.tenants.iter().map(|t| t.wasted_device_us).sum();
    assert!(
        wasted > 0.0,
        "an in-flight quantum should have been aborted"
    );
}

/// The ordered dispatch index must reproduce WFQ's `(vtime, seq)` order
/// exactly. One device serializes dispatches, identical job specs give
/// every quantum the same virtual cost `d`, and weight 2 halves tenant 1's
/// vtime increments — halving is exact in f64, so the whole schedule is
/// hand-computable: t0 runs (v0: 0→d), then t1 twice (v1: 0→d/2→d), then
/// the (d, seq) tie goes to t0's seq 2, then t1's seq 5 (d < 2d), then t0.
#[test]
fn wfq_dispatch_order_is_hand_computable() {
    let fleet = Backend::dgx_a100(1);
    let requests: Vec<JobRequest> = (0..6)
        .map(|i| JobRequest {
            tenant: (i % 2) as usize,
            spec: poisson(8, 4, 300 + i),
            ndev: 1,
            arrival_us: 0.0,
        })
        .collect();
    let mut server = Server::new(
        &fleet,
        vec![TenantSpec::new("w1", 1.0), TenantSpec::new("w2", 2.0)],
        ServeConfig {
            queue_capacity: 16,
            quantum_iters: 64, // each job runs in one quantum
            ..ServeConfig::default()
        },
    );
    let report = server.run(requests);
    assert!(report.outcomes.iter().all(|o| o.completed));
    let mut starts: Vec<(f64, usize)> = report
        .outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| (o.start_us.expect("ran"), i))
        .collect();
    starts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let order: Vec<usize> = starts.into_iter().map(|(_, i)| i).collect();
    assert_eq!(
        order,
        vec![0, 1, 3, 2, 5, 4],
        "WFQ dispatch order drifted from the hand-computed schedule"
    );
}

#[test]
fn fifo_baseline_serializes_and_wfq_beats_it_on_makespan() {
    let fleet = Backend::dgx_a100(4);
    let requests: Vec<JobRequest> = (0..6)
        .map(|i| JobRequest {
            tenant: (i % 2) as usize,
            spec: poisson(8, 6, 50 + i),
            ndev: 1,
            arrival_us: 0.0,
        })
        .collect();
    let tenants = || vec![TenantSpec::new("a", 1.0), TenantSpec::new("b", 1.0)];

    let fifo = Server::new(
        &fleet,
        tenants(),
        ServeConfig {
            policy: SchedPolicy::FifoExclusive,
            queue_capacity: 16,
            ..ServeConfig::default()
        },
    )
    .run(requests.clone());
    let wfq = Server::new(
        &fleet,
        tenants(),
        ServeConfig {
            queue_capacity: 16,
            ..ServeConfig::default()
        },
    )
    .run(requests);

    // FIFO runs one 1-device job at a time on a 4-device fleet; WFQ
    // space-shares four at once.
    assert!(fifo.outcomes.iter().all(|o| o.completed));
    assert!(wfq.outcomes.iter().all(|o| o.completed));
    assert!(
        wfq.makespan.as_us() * 1.3 < fifo.makespan.as_us(),
        "space sharing should beat exclusive FIFO by >1.3x: wfq {:.0}us fifo {:.0}us",
        wfq.makespan.as_us(),
        fifo.makespan.as_us()
    );
    // Same work either way: identical bits per submission index.
    for (a, b) in fifo.outcomes.iter().zip(wfq.outcomes.iter()) {
        assert_eq!(a.result_bits, b.result_bits);
    }
}

/// On a two-box island fleet the recorded collective route must track the
/// island structure of each job's pinned subset: subsets spanning both
/// islands route hierarchically, subsets inside one island stay flat —
/// and the routing never perturbs the bits.
#[test]
fn island_fleet_records_hierarchical_routes_and_stays_bit_identical() {
    use neon_core::CollectiveAlgorithm;

    let fleet = Backend::dgx_islands(&[4, 4]);
    // FIFO-exclusive pins each job to the first `ndev` fleet devices, so
    // the island split of every subset is known: 8 → [4,4], 5 → [4,1],
    // 4 → one whole island.
    let requests = vec![
        JobRequest {
            tenant: 0,
            spec: poisson(16, 6, 71),
            ndev: 8,
            arrival_us: 0.0,
        },
        JobRequest {
            tenant: 1,
            spec: poisson(10, 6, 72),
            ndev: 5,
            arrival_us: 1.0,
        },
        JobRequest {
            tenant: 0,
            spec: lbm(8, 6),
            ndev: 4,
            arrival_us: 2.0,
        },
    ];
    let mut server = Server::new(
        &fleet,
        vec![TenantSpec::new("a", 1.0), TenantSpec::new("b", 1.0)],
        ServeConfig {
            policy: SchedPolicy::FifoExclusive,
            ..ServeConfig::default()
        },
    );
    let report = server.run(requests);

    let routes: Vec<_> = report
        .outcomes
        .iter()
        .map(|o| o.collective_route.expect("every job ran"))
        .collect();
    assert_eq!(routes[0], CollectiveAlgorithm::Hierarchical, "8 over [4,4]");
    assert_eq!(routes[1], CollectiveAlgorithm::Hierarchical, "5 over [4,1]");
    assert_ne!(
        routes[2],
        CollectiveAlgorithm::Hierarchical,
        "4 inside one island is pure NVLink"
    );
    for o in &report.outcomes {
        assert!(o.completed);
        let solo = solo_run_bits(
            &fleet,
            o.spec,
            o.first_ndev.expect("ran"),
            options(),
            &o.evictions,
        )
        .expect("solo replay");
        assert_eq!(
            o.result_bits,
            Some(solo),
            "island-fleet result must match solo run for {:?}",
            o.spec
        );
    }
}

/// Severing the NVLink inside an island mid-run splits the island: the
/// job pinned across it aborts its in-flight quantum, re-plans on the
/// degraded fleet with the *same* devices, and its collective route flips
/// from hierarchical to a flat schedule — recorded as a [`RouteChange`] —
/// while the results stay bit-identical to a healthy solo run (link speed
/// never enters the numerics). The checkpoint that made the rollback
/// possible is priced on the virtual clock and charged to the tenant.
#[test]
fn link_fault_splits_island_reroutes_and_stays_bit_identical() {
    use neon_core::CollectiveAlgorithm;

    // Islands {0,1} and {2,3}; a 3-device job pins {0,1,2} under
    // FIFO-exclusive-style first-fit (it is the only job), straddling the
    // 0↔1 NVLink and the cross-island wire.
    let fleet = Backend::dgx_islands(&[2, 2]);
    let requests = vec![JobRequest {
        tenant: 0,
        spec: poisson(10, 12, 77),
        ndev: 3,
        arrival_us: 0.0,
    }];
    let mut server = Server::new(
        &fleet,
        vec![TenantSpec::new("a", 1.0)],
        ServeConfig {
            quantum_iters: 3,
            link_fault: Some(LinkFault {
                at_us: 40.0,
                src: 0,
                dst: 1,
                factor: None,
            }),
            ..ServeConfig::default()
        },
    );
    let report = server.run(requests);
    assert_eq!(report.link_faults, 1);
    assert_eq!(report.device_losses, 0);

    let o = &report.outcomes[0];
    assert!(o.completed);
    assert!(o.evictions.is_empty(), "no device died, no eviction");
    // The healthy {0,1},{2} subset routed hierarchically; the severed one
    // is three singleton islands and must have flipped to a flat schedule.
    assert_eq!(o.route_changes.len(), 1, "{:?}", o.route_changes);
    assert_eq!(o.route_changes[0].from, CollectiveAlgorithm::Hierarchical);
    assert_ne!(o.route_changes[0].to, CollectiveAlgorithm::Hierarchical);
    assert_eq!(o.collective_route, Some(o.route_changes[0].to));

    // Bit-identity against a *healthy* solo run with no migrations: the
    // repair kept every device, so the numerics never saw the fault.
    let solo = solo_run_bits(&fleet, o.spec, 3, options(), &[]).expect("solo replay");
    assert_eq!(o.result_bits, Some(solo));

    // The aborted quantum is charged as waste, and the checkpoints that
    // guarded it are priced in bytes and virtual microseconds.
    let t = &report.tenants[0];
    assert!(t.wasted_device_us > 0.0, "in-flight quantum aborted");
    assert!(t.checkpoint_bytes > 0, "captures staged state to the host");
    assert!(t.checkpoint_us > 0.0, "captures cost virtual time");
}

/// A bandwidth degrade re-plans without flipping the route when the link
/// class is unchanged: the job recompiles on the slower wire, records no
/// route change, and still matches the healthy solo bits.
#[test]
fn link_degrade_replans_without_route_change() {
    let fleet = Backend::dgx_a100(4);
    let requests = vec![JobRequest {
        tenant: 0,
        spec: poisson(10, 12, 81),
        ndev: 4,
        arrival_us: 0.0,
    }];
    let mut server = Server::new(
        &fleet,
        vec![TenantSpec::new("a", 1.0)],
        ServeConfig {
            quantum_iters: 3,
            link_fault: Some(LinkFault {
                at_us: 40.0,
                src: 1,
                dst: 2,
                factor: Some(0.25),
            }),
            ..ServeConfig::default()
        },
    );
    let report = server.run(requests);
    assert_eq!(report.link_faults, 1);
    let o = &report.outcomes[0];
    assert!(o.completed);
    assert!(
        o.route_changes.is_empty(),
        "degrading one NVLink of a flat single-island box keeps the route: {:?}",
        o.route_changes
    );
    let solo = solo_run_bits(&fleet, o.spec, 4, options(), &[]).expect("solo replay");
    assert_eq!(o.result_bits, Some(solo));
}

/// A device loss on an island fleet leaves an asymmetric survivor subset
/// (3+4 across the boxes); the re-plan must refresh the route to the
/// hierarchical schedule and the migrated job must still replay solo.
#[test]
fn island_survivor_subset_routes_hierarchical_after_loss() {
    use neon_core::CollectiveAlgorithm;

    let fleet = Backend::dgx_islands(&[4, 4]);
    let requests = vec![JobRequest {
        tenant: 0,
        spec: poisson(16, 12, 91),
        ndev: 8,
        arrival_us: 0.0,
    }];
    let mut server = Server::new(
        &fleet,
        vec![TenantSpec::new("a", 1.0)],
        ServeConfig {
            quantum_iters: 3,
            device_loss: Some(DeviceLoss {
                at_us: 40.0,
                device: 2,
            }),
            ..ServeConfig::default()
        },
    );
    let report = server.run(requests);
    assert_eq!(report.device_losses, 1);

    let o = &report.outcomes[0];
    assert!(o.completed);
    assert!(!o.evictions.is_empty(), "the loss must force a re-plan");
    assert_eq!(
        o.collective_route,
        Some(CollectiveAlgorithm::Hierarchical),
        "the 3+4 survivor subset straddles both islands"
    );
    let solo = solo_run_bits(
        &fleet,
        o.spec,
        o.first_ndev.expect("ran"),
        options(),
        &o.evictions,
    )
    .expect("solo replay");
    assert_eq!(o.result_bits, Some(solo));
}
