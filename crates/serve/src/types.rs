//! Request, configuration and report types of the serving layer.

use neon_apps::JobSpec;
use neon_comm::Algorithm;
use neon_sys::{CounterSnapshot, SimTime};

/// One tenant of the server: a name and a fair-share weight. A tenant with
/// weight 2 is entitled to twice the device-time of a tenant with weight 1
/// whenever both are backlogged.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (accounting rows carry it).
    pub name: String,
    /// Fair-share weight (> 0).
    pub weight: f64,
}

impl TenantSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, weight: f64) -> Self {
        assert!(weight > 0.0, "tenant weight must be positive");
        TenantSpec {
            name: name.into(),
            weight,
        }
    }
}

/// One job submission: which tenant, what to solve, how many devices, when
/// it arrives on the virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct JobRequest {
    /// Index into the server's tenant list.
    pub tenant: usize,
    /// The solver work to run.
    pub spec: JobSpec,
    /// Devices requested (clamped to the alive fleet at pin time).
    pub ndev: usize,
    /// Arrival time on the virtual clock, in microseconds.
    pub arrival_us: f64,
}

/// Scheduling policy of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Weighted fair queueing: jobs are preempted every
    /// [`ServeConfig::quantum_iters`] iterations, the next quantum goes to
    /// the dispatchable job whose tenant has the smallest virtual time, and
    /// jobs with disjoint device subsets run side by side (space sharing).
    WeightedFair,
    /// Baseline: one job at a time, in arrival order, run to completion.
    /// No space sharing, no preemption — what a naive "the Skeleton owns
    /// the whole Backend" deployment would do.
    FifoExclusive,
}

/// A scheduled permanent device loss (server-level fault injection): fleet
/// device `device` dies at virtual time `at_us`.
#[derive(Debug, Clone, Copy)]
pub struct DeviceLoss {
    /// Virtual time of the loss, in microseconds.
    pub at_us: f64,
    /// Fleet device index that dies.
    pub device: usize,
}

/// A scheduled permanent link fault (server-level fault injection): at
/// virtual time `at_us` the fleet's peer link between `src` and `dst` is
/// severed (`factor == None`, both directions fall back to PCIe-class
/// staging) or degraded to `factor` of its bandwidth. Jobs whose pinned
/// subset spans both endpoints are re-planned on the degraded fleet; their
/// collective routes may flip (an island that split routes hierarchically
/// where it was flat, or vice versa), which [`JobOutcome::route_changes`]
/// records.
#[derive(Debug, Clone, Copy)]
pub struct LinkFault {
    /// Virtual time of the fault, in microseconds.
    pub at_us: f64,
    /// One end of the affected fleet link.
    pub src: usize,
    /// The other end of the affected fleet link.
    pub dst: usize,
    /// `None` = severed; `Some(f)` = bandwidth drops to `f` of nominal.
    pub factor: Option<f64>,
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission bound, per tenant: a job arriving while its tenant
    /// already has this many admitted jobs *waiting* (at an iteration
    /// boundary, not running) is shed. The bound is per tenant so one
    /// backlogged tenant cannot fill the queue and shed everyone else's
    /// arrivals; total queueing is bounded by `capacity × tenants`.
    pub queue_capacity: usize,
    /// Iterations per quantum under [`SchedPolicy::WeightedFair`]; jobs
    /// yield at the next iteration boundary after this many iterations.
    pub quantum_iters: u64,
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Optional scheduled device loss.
    pub device_loss: Option<DeviceLoss>,
    /// Optional scheduled link fault.
    pub link_fault: Option<LinkFault>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 16,
            quantum_iters: 4,
            policy: SchedPolicy::WeightedFair,
            device_loss: None,
            link_fault: None,
        }
    }
}

/// A job's forced migration after a device loss: at which iteration
/// boundary it re-planned and how many devices the new subset has. Replay
/// the same events solo ([`crate::solo_run_bits`]) to reproduce the
/// multiplexed run's bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionEvent {
    /// Iteration boundary (checkpoint) the job resumed from.
    pub at_iteration: u64,
    /// Subset size before the loss.
    pub from_ndev: usize,
    /// Subset size after re-planning (equal if a spare device was free).
    pub to_ndev: usize,
}

/// One collective-route flip forced by a fleet link fault: the job kept
/// its devices, but the degraded subset topology routes its all-reduces
/// differently from the healthy one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteChange {
    /// Iteration boundary the job was re-planned at.
    pub at_iteration: u64,
    /// Route on the healthy subset topology.
    pub from: Algorithm,
    /// Route on the degraded subset topology.
    pub to: Algorithm,
}

/// Per-request outcome.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Index into the server's tenant list.
    pub tenant: usize,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Devices requested.
    pub ndev: usize,
    /// Whether admission accepted the job (false ⇒ shed, nothing ran).
    pub admitted: bool,
    /// Whether every iteration committed.
    pub completed: bool,
    /// Result fingerprint (completed jobs only).
    pub result_bits: Option<u64>,
    /// Arrival time (virtual µs).
    pub arrival_us: f64,
    /// First-dispatch time (virtual µs; admitted jobs that ran).
    pub start_us: Option<f64>,
    /// Completion time (virtual µs).
    pub finish_us: Option<f64>,
    /// Iterations committed.
    pub iterations: u64,
    /// Device subset size the job first ran on.
    pub first_ndev: Option<usize>,
    /// Forced migrations (device loss re-plans), in order.
    pub evictions: Vec<EvictionEvent>,
    /// Collective algorithm the engine routes this job's field-sized
    /// all-reduces through on its pinned subset (refreshed on migration,
    /// so a survivor subset that straddles islands shows up as
    /// [`Algorithm::Hierarchical`]). `None` for jobs that never ran.
    pub collective_route: Option<Algorithm>,
    /// Collective-route flips forced by fleet link faults, in order. A
    /// fault that re-plans a job without changing its route records
    /// nothing here — the entry means the wire the route relied on is
    /// gone, not merely that a recompile happened.
    pub route_changes: Vec<RouteChange>,
}

impl JobOutcome {
    /// Sojourn time (finish − arrival) of a completed job, in µs.
    pub fn latency_us(&self) -> Option<f64> {
        self.finish_us.map(|f| f - self.arrival_us)
    }
}

/// Per-tenant accounting, sliced out of the shared `QueueSim` / `ExecReport`
/// counters with snapshot deltas.
#[derive(Debug, Clone)]
pub struct TenantAccount {
    /// Tenant name.
    pub name: String,
    /// Fair-share weight.
    pub weight: f64,
    /// Iterations committed across all the tenant's jobs.
    pub iterations: u64,
    /// Kernel launches attributed to the tenant.
    pub launches: u64,
    /// Bytes swept by the tenant's kernels.
    pub bytes_moved: u64,
    /// Device-time consumed: Σ (quantum makespan × subset size), µs.
    pub device_busy_us: f64,
    /// Link busy time attributed to the tenant, µs.
    pub link_busy_us: f64,
    /// Device-time of quanta aborted by a device loss (rolled back, not
    /// counted in `device_busy_us`), µs.
    pub wasted_device_us: f64,
    /// Bytes of solver state staged to the host by checkpoint captures on
    /// the tenant's behalf.
    pub checkpoint_bytes: u64,
    /// Virtual time spent capturing checkpoints (checkpoint bytes over the
    /// host staging link), µs. Charged to the tenant's WFQ virtual time —
    /// resilience is a service the tenant pays for, not free overhead
    /// smeared across the fleet.
    pub checkpoint_us: f64,
    /// Total time the tenant's jobs sat admitted-but-not-running, µs.
    pub queue_wait_us: f64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// Jobs rejected by admission control.
    pub jobs_shed: u64,
}

impl TenantAccount {
    pub(crate) fn new(spec: &TenantSpec) -> Self {
        TenantAccount {
            name: spec.name.clone(),
            weight: spec.weight,
            iterations: 0,
            launches: 0,
            bytes_moved: 0,
            device_busy_us: 0.0,
            link_busy_us: 0.0,
            wasted_device_us: 0.0,
            checkpoint_bytes: 0,
            checkpoint_us: 0.0,
            queue_wait_us: 0.0,
            jobs_completed: 0,
            jobs_shed: 0,
        }
    }

    pub(crate) fn commit(&mut self, delta: &CounterSnapshot, iterations: u64, device_us: f64) {
        self.iterations += iterations;
        self.launches += delta.kernel_launches;
        self.bytes_moved += delta.kernel_bytes_moved;
        self.link_busy_us += delta.link_busy.as_us();
        self.device_busy_us += device_us;
    }
}

/// What one [`crate::Server::run`] produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-request outcomes, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Per-tenant accounting.
    pub tenants: Vec<TenantAccount>,
    /// Virtual time of the last event.
    pub makespan: SimTime,
    /// Jobs rejected by admission control.
    pub shed: u64,
    /// Device losses processed.
    pub device_losses: u64,
    /// Link faults processed.
    pub link_faults: u64,
    /// Host wall-clock spent in scheduling decisions, µs.
    pub sched_wall_us: f64,
    /// Host wall-clock of the whole run (compiles + functional execution +
    /// scheduling), µs.
    pub total_wall_us: f64,
    /// Plan-cache hits minus misses over the run (positive deltas mean
    /// cross-tenant sharing worked).
    pub cache_hits: u64,
    /// Plan-cache misses over the run.
    pub cache_misses: u64,
}

impl ServeReport {
    /// Completed jobs per *virtual* second.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.makespan.as_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.completed).count() as f64 / secs
    }

    /// `(p50, p99)` job latency over completed jobs, in virtual µs.
    pub fn latency_percentiles_us(&self) -> (f64, f64) {
        let mut lat: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(|o| o.latency_us())
            .collect();
        if lat.is_empty() {
            return (0.0, 0.0);
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (percentile(&lat, 0.50), percentile(&lat, 0.99))
    }

    /// Jain's fairness index over weight-normalized tenant service
    /// `x_i = device_busy_us_i / weight_i`:
    /// `J = (Σx)² / (n · Σx²)` ∈ (0, 1], 1 ⇔ perfectly proportional.
    /// Tenants that submitted no jobs are excluded.
    pub fn jain_fairness(&self) -> f64 {
        let x: Vec<f64> = self
            .tenants
            .iter()
            .filter(|t| t.jobs_completed + t.jobs_shed > 0 || t.device_busy_us > 0.0)
            .map(|t| t.device_busy_us / t.weight)
            .collect();
        jain_index(&x)
    }
}

/// Jain's fairness index of an allocation vector.
pub fn jain_index(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 1.0;
    }
    let sum: f64 = x.iter().sum();
    let sq: f64 = x.iter().map(|v| v * v).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (x.len() as f64 * sq)
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in `[0, 1]`).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[5.0]), 1.0);
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One tenant hogging everything over n tenants → 1/n.
        let j = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
        // Mild skew stays high.
        assert!(jain_index(&[1.0, 1.2, 0.9]) > 0.95);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn tenant_weight_must_be_positive() {
        let t = TenantSpec::new("a", 2.0);
        assert_eq!(t.weight, 2.0);
        let r = std::panic::catch_unwind(|| TenantSpec::new("b", 0.0));
        assert!(r.is_err());
    }
}
