//! The serving event loop: admission, scheduling, space sharing, device
//! loss, accounting.
//!
//! The server is a discrete-event simulation on the same virtual clock the
//! executors use. Quanta are *computed* eagerly (a dispatched quantum runs
//! its iterations functionally and returns its virtual makespan) and then
//! *placed* on the fleet timeline: the job's pinned devices are busy from
//! the dispatch time until `dispatch + makespan`. Jobs pinned to disjoint
//! subsets therefore overlap in virtual time — space sharing — while jobs
//! whose subsets intersect serialize on the shared devices.
//!
//! Preemption happens only between [`neon_apps::SolverJob::advance`] calls
//! (iteration boundaries), so no kernel state is ever interrupted and a
//! job's results are bit-identical to a solo run of the same spec on a
//! same-size backend.
//!
//! A scheduled [`DeviceLoss`] marks a fleet device dead at its virtual
//! time: in-flight quanta whose subset contains the device are aborted and
//! rolled back to the checkpoint captured at their quantum start, and every
//! live job pinned to the device is re-planned — survivors keep their
//! subset slots, a spare alive device replaces the dead one when the fleet
//! still has enough devices, otherwise the subset shrinks — and migrated
//! through logical coordinates. Plans compiled for equal-size subsets stay
//! valid (the fingerprint hashes device *models*, not identities), so
//! re-planning is usually a plan-cache hit.

use std::time::Instant;

use neon_apps::{JobSpec, SolverJob};
use neon_comm::{choose, Algorithm, CollectiveKind};
use neon_core::{OccLevel, SkeletonOptions};
use neon_set::Checkpoint;
use neon_sys::{Backend, CounterSnapshot, DeviceId, Result, SimTime};

use crate::types::{
    DeviceLoss, EvictionEvent, JobOutcome, JobRequest, LinkFault, RouteChange, SchedPolicy,
    ServeConfig, ServeReport, TenantAccount, TenantSpec,
};

/// Comparison slack for event times (sums of f64 microseconds).
const EPS: f64 = 1e-9;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Not yet arrived.
    Pending,
    /// Admitted, at an iteration boundary, not running.
    Waiting,
    /// A quantum is in flight.
    Running,
    /// All iterations committed.
    Done,
    /// Rejected by admission control.
    Shed,
}

/// Per-request server-side state.
struct JobState {
    req: JobRequest,
    /// Admission sequence number (FIFO order, WFQ tie-break).
    seq: usize,
    job: Option<Box<dyn SolverJob>>,
    /// Fleet device indices the job is pinned to (sorted; set at first
    /// dispatch, re-carved on device loss).
    pinned: Option<Vec<usize>>,
    phase: Phase,
    /// When the job last became ready (arrival or last quantum end).
    ready_since: f64,
    start_us: Option<f64>,
    finish_us: Option<f64>,
    queue_wait_us: f64,
    first_ndev: Option<usize>,
    evictions: Vec<EvictionEvent>,
    /// Collective route on the current pinned subset (see
    /// [`JobOutcome::collective_route`]).
    route: Option<Algorithm>,
    /// Route flips forced by fleet link faults (see
    /// [`JobOutcome::route_changes`]).
    route_changes: Vec<RouteChange>,
}

/// The collective algorithm the engine would route this job's field-sized
/// all-reduces through on `backend`'s (subset) topology. The payload is
/// one dense `f64` field of the job's grid — the unit the solvers reduce
/// over — so the answer tracks the island structure of the subset: flat
/// single-island subsets pick a flat schedule, subsets straddling islands
/// (multi-box fleets, asymmetric survivor sets after eviction) pick the
/// hierarchical one.
fn collective_route(spec: &JobSpec, backend: &Backend) -> Algorithm {
    let dim = match *spec {
        JobSpec::Poisson { dim, .. } | JobSpec::Lbm { dim, .. } => dim as u64,
    };
    let field_bytes = dim * dim * dim * std::mem::size_of::<f64>() as u64;
    choose(CollectiveKind::AllReduce, field_bytes, backend.topology())
}

/// One in-flight quantum.
struct Active {
    widx: usize,
    devices: Vec<usize>,
    start: f64,
    end: f64,
    iters_delta: u64,
    counters_before: CounterSnapshot,
    /// Captured at quantum start iff a device loss is armed for one of the
    /// quantum's devices; the abort path restores it.
    cp: Option<Checkpoint>,
}

/// The waiting set, indexed in dispatch order.
///
/// The WFQ scheduler's next candidate is the placeable waiting job with
/// the least `(tenant virtual time, admission seq)` key. A linear minimum
/// over the waiting list costs O(waiting) per dispatch — quadratic over a
/// backlogged burst — so the set is kept as an ordered index instead: the
/// scheduler scans a (usually length-1) prefix of a `BTreeSet`.
///
/// All of a tenant's entries share the tenant's current virtual time, so
/// the index re-keys a tenant's entries only when its virtual time moves
/// (quantum commit, idle-return floor) — O(waiting-of-tenant · log n)
/// per vtime advance instead of O(waiting) per dispatch attempt.
struct WaitQueue {
    /// `(vtime bits, admission seq, job index)`, ordered. Virtual times
    /// are non-negative finite f64s, so `to_bits` is order-preserving.
    by_key: std::collections::BTreeSet<(u64, usize, usize)>,
    /// Waiting `(seq, widx)` entries per tenant — what to re-key when the
    /// tenant's virtual time advances, and the admission-control count.
    by_tenant: Vec<Vec<(usize, usize)>>,
    /// The vtime bits each tenant's entries are currently keyed under.
    keyed_vtime: Vec<u64>,
}

impl WaitQueue {
    fn new(tenants: usize) -> Self {
        WaitQueue {
            by_key: std::collections::BTreeSet::new(),
            by_tenant: vec![Vec::new(); tenants],
            keyed_vtime: vec![0.0f64.to_bits(); tenants],
        }
    }

    fn push(&mut self, widx: usize, tenant: usize, seq: usize) {
        self.by_key.insert((self.keyed_vtime[tenant], seq, widx));
        self.by_tenant[tenant].push((seq, widx));
    }

    fn remove(&mut self, widx: usize, tenant: usize, seq: usize) {
        self.by_key.remove(&(self.keyed_vtime[tenant], seq, widx));
        self.by_tenant[tenant].retain(|&(_, w)| w != widx);
    }

    /// Re-key `tenant`'s waiting entries under its new virtual time.
    /// Must be called at every vtime mutation so index order and the
    /// scheduler's `(vtime, seq)` key never drift apart.
    fn retune(&mut self, tenant: usize, vtime: f64) {
        let bits = vtime.to_bits();
        let old = self.keyed_vtime[tenant];
        if bits == old {
            return;
        }
        for &(seq, widx) in &self.by_tenant[tenant] {
            self.by_key.remove(&(old, seq, widx));
            self.by_key.insert((bits, seq, widx));
        }
        self.keyed_vtime[tenant] = bits;
    }

    fn tenant_waiting(&self, tenant: usize) -> usize {
        self.by_tenant[tenant].len()
    }

    fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Job indices in dispatch-key order (least `(vtime, seq)` first).
    fn in_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.by_key.iter().map(|&(_, _, w)| w)
    }

    /// Job indices in no particular order (for order-insensitive scans).
    fn iter_all(&self) -> impl Iterator<Item = usize> + '_ {
        self.by_tenant.iter().flatten().map(|&(_, w)| w)
    }
}

/// A multi-tenant solver-job server over one device fleet.
pub struct Server {
    fleet: Backend,
    tenants: Vec<TenantSpec>,
    cfg: ServeConfig,
    job_options: SkeletonOptions,
}

impl Server {
    /// Create a server over `fleet` for `tenants`.
    pub fn new(fleet: &Backend, tenants: Vec<TenantSpec>, cfg: ServeConfig) -> Self {
        assert!(!tenants.is_empty(), "server needs at least one tenant");
        Server {
            fleet: fleet.clone(),
            tenants,
            cfg,
            job_options: SkeletonOptions::with_occ(OccLevel::Standard),
        }
    }

    /// Override the skeleton options jobs are compiled with.
    pub fn with_job_options(mut self, options: SkeletonOptions) -> Self {
        self.job_options = options;
        self
    }

    /// The fleet this server schedules onto.
    pub fn fleet(&self) -> &Backend {
        &self.fleet
    }

    /// Serve `requests` to completion (or shedding) and report.
    ///
    /// The whole stream is simulated in one call: arrivals are admitted at
    /// their virtual arrival times, quanta are scheduled by the configured
    /// policy, and the report carries per-request outcomes plus per-tenant
    /// accounting.
    pub fn run(&mut self, requests: Vec<JobRequest>) -> ServeReport {
        for r in &requests {
            assert!(r.tenant < self.tenants.len(), "request for unknown tenant");
            assert!(r.ndev >= 1, "request needs at least one device");
        }
        let run_start = Instant::now();
        let cache_before = neon_core::plan_cache_stats();
        // The interconnect is mutable run state: a fired link fault swaps
        // in the degraded fleet, and every later subset carve sees it.
        let mut fleet = self.fleet.clone();
        let fleet_n = fleet.num_devices();

        // Arrival order (stable on submission index).
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| {
            requests[a]
                .arrival_us
                .partial_cmp(&requests[b].arrival_us)
                .unwrap()
                .then(a.cmp(&b))
        });

        let mut jobs: Vec<JobState> = requests
            .iter()
            .map(|r| JobState {
                req: *r,
                seq: usize::MAX,
                job: None,
                pinned: None,
                phase: Phase::Pending,
                ready_since: r.arrival_us,
                start_us: None,
                finish_us: None,
                queue_wait_us: 0.0,
                first_ndev: None,
                evictions: Vec::new(),
                route: None,
                route_changes: Vec::new(),
            })
            .collect();

        let mut accounts: Vec<TenantAccount> =
            self.tenants.iter().map(TenantAccount::new).collect();
        let mut vtime: Vec<f64> = vec![0.0; self.tenants.len()];
        let mut live_jobs: Vec<usize> = vec![0; self.tenants.len()];

        let mut free_at: Vec<f64> = vec![0.0; fleet_n];
        let mut dead: Vec<bool> = vec![false; fleet_n];
        let mut waiting = WaitQueue::new(self.tenants.len());
        let mut active: Vec<Active> = Vec::new();
        let mut clock: f64 = 0.0;
        let mut next_arrival = 0usize;
        let mut next_seq = 0usize;
        let mut shed = 0u64;
        let mut device_losses = 0u64;
        let mut link_faults = 0u64;
        let mut loss_pending = self.cfg.device_loss;
        let mut link_pending = self.cfg.link_fault;
        let mut sched_wall = std::time::Duration::ZERO;
        let mut makespan: f64 = 0.0;

        loop {
            // 1. Admit arrivals due at or before the clock.
            while next_arrival < order.len()
                && requests[order[next_arrival]].arrival_us <= clock + EPS
            {
                let widx = order[next_arrival];
                next_arrival += 1;
                let tenant = jobs[widx].req.tenant;
                if waiting.tenant_waiting(tenant) >= self.cfg.queue_capacity {
                    jobs[widx].phase = Phase::Shed;
                    accounts[tenant].jobs_shed += 1;
                    shed += 1;
                    continue;
                }
                jobs[widx].phase = Phase::Waiting;
                jobs[widx].seq = next_seq;
                next_seq += 1;
                jobs[widx].ready_since = jobs[widx].req.arrival_us.max(clock);
                // WFQ floor: a tenant returning from idle must not replay
                // the virtual time it sat out (no service banking).
                if live_jobs[tenant] == 0 {
                    let floor = vtime
                        .iter()
                        .enumerate()
                        .filter(|(u, _)| live_jobs[*u] > 0)
                        .map(|(_, v)| *v)
                        .fold(f64::INFINITY, f64::min);
                    if floor.is_finite() {
                        vtime[tenant] = vtime[tenant].max(floor);
                        waiting.retune(tenant, vtime[tenant]);
                    }
                }
                live_jobs[tenant] += 1;
                waiting.push(widx, tenant, jobs[widx].seq);
            }

            // 2. Fire a due device loss (after completions at strictly
            //    earlier times were handled in previous rounds; quanta
            //    ending exactly at the loss time commit below first only
            //    if they were already due — a tie goes to the loss, which
            //    is the conservative choice: the quantum aborts).
            if let Some(loss) = loss_pending {
                if loss.at_us <= clock + EPS {
                    loss_pending = None;
                    self.process_loss(
                        loss,
                        clock.min(loss.at_us.max(0.0)),
                        &fleet,
                        &mut jobs,
                        &mut accounts,
                        &mut active,
                        &mut waiting,
                        &mut free_at,
                        &mut dead,
                    );
                    device_losses += 1;
                }
            }

            // 2b. Fire a due link fault: swap in the degraded fleet, abort
            //     in-flight quanta that straddled the wire, re-plan pinned
            //     jobs (same tie-to-the-loss semantics as a device loss).
            if let Some(fault) = link_pending {
                if fault.at_us <= clock + EPS {
                    link_pending = None;
                    self.process_link_fault(
                        fault,
                        clock.min(fault.at_us.max(0.0)),
                        &mut fleet,
                        &mut jobs,
                        &mut accounts,
                        &mut active,
                        &mut waiting,
                        &mut free_at,
                    );
                    link_faults += 1;
                }
            }

            // 3. Commit quanta that ended by now.
            let mut i = 0;
            while i < active.len() {
                if active[i].end <= clock + EPS {
                    let a = active.swap_remove(i);
                    makespan = makespan.max(a.end);
                    let js = &mut jobs[a.widx];
                    let tenant = js.req.tenant;
                    let job = js.job.as_ref().expect("active job is built");
                    let delta = job.counters() - a.counters_before;
                    let device_us = (a.end - a.start) * a.devices.len() as f64;
                    accounts[tenant].commit(&delta, a.iters_delta, device_us);
                    vtime[tenant] += device_us / self.tenants[tenant].weight;
                    waiting.retune(tenant, vtime[tenant]);
                    if job.is_done() {
                        js.phase = Phase::Done;
                        js.finish_us = Some(a.end);
                        accounts[tenant].jobs_completed += 1;
                        live_jobs[tenant] -= 1;
                    } else {
                        let seq = js.seq;
                        js.phase = Phase::Waiting;
                        js.ready_since = a.end;
                        waiting.push(a.widx, tenant, seq);
                    }
                } else {
                    i += 1;
                }
            }

            // 4. Dispatch while something is both ready and placeable.
            while self.try_dispatch_one(
                clock,
                &fleet,
                &mut jobs,
                &mut accounts,
                &mut waiting,
                &mut active,
                &mut free_at,
                &dead,
                &vtime,
                loss_pending,
                link_pending,
                &mut sched_wall,
            ) {}

            // 5. Done?
            if next_arrival >= order.len() && waiting.is_empty() && active.is_empty() {
                break;
            }

            // 6. Advance the clock to the next event.
            let mut t = f64::INFINITY;
            if next_arrival < order.len() {
                t = t.min(requests[order[next_arrival]].arrival_us);
            }
            if let Some(loss) = loss_pending {
                t = t.min(loss.at_us);
            }
            if let Some(fault) = link_pending {
                t = t.min(fault.at_us);
            }
            for a in &active {
                t = t.min(a.end);
            }
            if !t.is_finite() {
                // Waiting jobs that can never run (e.g. the whole fleet
                // died). Leave them incomplete rather than spinning.
                break;
            }
            clock = t.max(clock);
        }

        let cache_after = neon_core::plan_cache_stats();
        let outcomes: Vec<JobOutcome> = jobs
            .iter()
            .map(|js| JobOutcome {
                tenant: js.req.tenant,
                spec: js.req.spec,
                ndev: js.req.ndev,
                admitted: js.phase != Phase::Shed && js.phase != Phase::Pending,
                completed: js.phase == Phase::Done,
                result_bits: match (js.phase, &js.job) {
                    (Phase::Done, Some(job)) => Some(job.result_bits()),
                    _ => None,
                },
                arrival_us: js.req.arrival_us,
                start_us: js.start_us,
                finish_us: js.finish_us,
                iterations: js.job.as_ref().map_or(0, |j| j.completed()),
                first_ndev: js.first_ndev,
                evictions: js.evictions.clone(),
                collective_route: js.route,
                route_changes: js.route_changes.clone(),
            })
            .collect();
        for js in &jobs {
            accounts[js.req.tenant].queue_wait_us += js.queue_wait_us;
        }

        ServeReport {
            outcomes,
            tenants: accounts,
            makespan: SimTime::from_us(makespan),
            shed,
            device_losses,
            link_faults,
            sched_wall_us: sched_wall.as_secs_f64() * 1e6,
            total_wall_us: run_start.elapsed().as_secs_f64() * 1e6,
            cache_hits: cache_after.hits - cache_before.hits,
            cache_misses: cache_after.misses - cache_before.misses,
        }
    }

    /// Pick and dispatch at most one quantum at `clock`. Returns whether a
    /// dispatch happened.
    #[allow(clippy::too_many_arguments)]
    fn try_dispatch_one(
        &self,
        clock: f64,
        fleet: &Backend,
        jobs: &mut [JobState],
        accounts: &mut [TenantAccount],
        waiting: &mut WaitQueue,
        active: &mut Vec<Active>,
        free_at: &mut [f64],
        dead: &[bool],
        vtime: &[f64],
        loss_pending: Option<DeviceLoss>,
        link_pending: Option<LinkFault>,
        sched_wall: &mut std::time::Duration,
    ) -> bool {
        let sched_start = Instant::now();
        let alive: Vec<usize> = (0..free_at.len()).filter(|&d| !dead[d]).collect();
        let free_now =
            |d: usize, free_at: &[f64]| -> bool { !dead[d] && free_at[d] <= clock + EPS };

        let placeable = |js: &JobState, free_at: &[f64]| -> bool {
            match &js.pinned {
                Some(p) => p.iter().all(|&d| free_now(d, free_at)),
                None => {
                    let want = js.req.ndev.min(alive.len());
                    want >= 1 && alive.iter().filter(|&&d| free_now(d, free_at)).count() >= want
                }
            }
        };

        let pick: Option<usize> = match self.cfg.policy {
            SchedPolicy::FifoExclusive => {
                // One job at a time, strict arrival order: the head of the
                // queue runs to completion before anything else starts.
                if active.is_empty() && !alive.is_empty() {
                    waiting
                        .iter_all()
                        .min_by_key(|&w| jobs[w].seq)
                        .filter(|&w| placeable(&jobs[w], free_at))
                } else {
                    None
                }
            }
            SchedPolicy::WeightedFair => {
                // First placeable entry in index order — identical to the
                // old linear `min_by((vtime[tenant], seq))` scan, since the
                // index keys under exactly that pair and `retune` keeps the
                // keys synced with `vtime`.
                let pick = waiting.in_order().find(|&w| placeable(&jobs[w], free_at));
                debug_assert_eq!(
                    pick,
                    waiting
                        .iter_all()
                        .filter(|&w| placeable(&jobs[w], free_at))
                        .min_by(|&a, &b| {
                            let ka = (vtime[jobs[a].req.tenant], jobs[a].seq);
                            let kb = (vtime[jobs[b].req.tenant], jobs[b].seq);
                            ka.partial_cmp(&kb).unwrap()
                        }),
                    "ordered index must reproduce the linear-scan pick"
                );
                pick
            }
        };
        *sched_wall += sched_start.elapsed();
        let Some(widx) = pick else {
            return false;
        };

        // Pin a subset at first dispatch: the lowest-indexed alive free
        // devices (jobs keep their subset for data affinity; overlapping
        // pins time-share, disjoint pins space-share).
        let sched_start = Instant::now();
        if jobs[widx].pinned.is_none() {
            let want = jobs[widx].req.ndev.min(alive.len());
            let mut choice: Vec<usize> = alive
                .iter()
                .copied()
                .filter(|&d| free_now(d, free_at))
                .collect();
            choice.truncate(want);
            choice.sort_unstable();
            jobs[widx].pinned = Some(choice);
        }
        let devices = jobs[widx].pinned.clone().expect("pinned above");
        *sched_wall += sched_start.elapsed();

        // Build the solver on the subset backend (first dispatch only);
        // compiles go through the shared plan cache.
        if jobs[widx].job.is_none() {
            let subset: Vec<DeviceId> = devices.iter().map(|&d| DeviceId(d)).collect();
            let backend = fleet.with_devices(&subset).expect("pinned subset is valid");
            let job = jobs[widx]
                .req
                .spec
                .build(&backend, self.job_options)
                .expect("job construction on subset backend");
            jobs[widx].first_ndev = Some(job.num_devices());
            jobs[widx].route = Some(collective_route(&jobs[widx].req.spec, &backend));
            jobs[widx].job = Some(job);
            jobs[widx].start_us = Some(clock);
        }

        let span = match self.cfg.policy {
            SchedPolicy::FifoExclusive => u64::MAX,
            SchedPolicy::WeightedFair => self.cfg.quantum_iters.max(1),
        };
        let js = &mut jobs[widx];
        let job = js.job.as_mut().expect("built above");
        // Checkpoint iff an armed fault could abort this quantum: a device
        // loss targeting one of its devices, or a link fault both of whose
        // endpoints the quantum straddles — the abort path rolls back to
        // the quantum start.
        let loss_armed = matches!(loss_pending, Some(l) if devices.contains(&l.device));
        let link_armed = matches!(
            link_pending,
            Some(f) if devices.contains(&f.src) && devices.contains(&f.dst)
        );
        let cp = if loss_armed || link_armed {
            Some(job.capture())
        } else {
            None
        };
        // A capture stages the job's write set to the host, and the
        // devices stall on the staging link while it runs: the cost lands
        // on the quantum's virtual makespan (and hence the tenant's WFQ
        // virtual time at commit), not on some global overhead bucket.
        let cp_us = cp.as_ref().map_or(0.0, |c| {
            let bytes = c.bytes();
            let us = fleet.topology().host_transfer_time(bytes).as_us();
            let t = &mut accounts[js.req.tenant];
            t.checkpoint_bytes += bytes;
            t.checkpoint_us += us;
            us
        });
        let counters_before = job.counters();
        let iters_before = job.completed();
        let report = job.advance(span);
        let iters_delta = job.completed() - iters_before;
        debug_assert!(iters_delta > 0, "a quantum must commit progress");
        let end = clock + cp_us + report.makespan.as_us().max(1e-6);

        js.queue_wait_us += clock - js.ready_since;
        js.phase = Phase::Running;
        let (tenant, seq) = (js.req.tenant, js.seq);
        waiting.remove(widx, tenant, seq);
        for &d in &devices {
            free_at[d] = end;
        }
        active.push(Active {
            widx,
            devices,
            start: clock,
            end,
            iters_delta,
            counters_before,
            cp,
        });
        true
    }

    /// Mark a fleet device dead, abort in-flight quanta that used it, and
    /// re-plan + migrate every live job pinned to it.
    #[allow(clippy::too_many_arguments)]
    fn process_loss(
        &self,
        loss: DeviceLoss,
        at: f64,
        fleet: &Backend,
        jobs: &mut [JobState],
        accounts: &mut [TenantAccount],
        active: &mut Vec<Active>,
        waiting: &mut WaitQueue,
        free_at: &mut [f64],
        dead: &mut [bool],
    ) {
        let d0 = loss.device;
        if d0 >= dead.len() || dead[d0] {
            return;
        }
        dead[d0] = true;

        // Abort in-flight quanta whose subset contains the dead device:
        // roll back to the quantum-start checkpoint, free the surviving
        // devices at the loss time, charge the wasted device-time.
        let mut i = 0;
        while i < active.len() {
            if active[i].devices.contains(&d0) {
                let a = active.swap_remove(i);
                let js = &mut jobs[a.widx];
                let cp = a.cp.expect("loss was armed, checkpoint captured");
                js.job.as_mut().expect("active job is built").restore(&cp);
                accounts[js.req.tenant].wasted_device_us +=
                    (at - a.start).max(0.0) * a.devices.len() as f64;
                for &d in &a.devices {
                    if d != d0 {
                        free_at[d] = at;
                    }
                }
                let (tenant, seq) = (js.req.tenant, js.seq);
                js.phase = Phase::Waiting;
                js.ready_since = at;
                waiting.push(a.widx, tenant, seq);
            } else {
                i += 1;
            }
        }

        // Re-plan every live job pinned to the dead device: keep the
        // surviving slots, top up with the least-loaded alive spares (same
        // size if the fleet still has enough devices, else shrink), and
        // migrate state through logical coordinates. Equal-size subsets
        // share a backend fingerprint, so the rebuild is normally a
        // plan-cache hit, not a fresh compile.
        let alive_count = dead.iter().filter(|&&x| !x).count();
        for js in jobs.iter_mut() {
            if js.phase != Phase::Waiting {
                continue;
            }
            let Some(pinned) = &js.pinned else { continue };
            if !pinned.contains(&d0) {
                continue;
            }
            let from_ndev = pinned.len();
            let survivors: Vec<usize> = pinned.iter().copied().filter(|&d| d != d0).collect();
            let size = from_ndev.min(alive_count).max(1);
            let mut spares: Vec<usize> = (0..dead.len())
                .filter(|&d| !dead[d] && !survivors.contains(&d))
                .collect();
            spares.sort_by(|&a, &b| free_at[a].partial_cmp(&free_at[b]).unwrap().then(a.cmp(&b)));
            let mut new_pinned = survivors;
            new_pinned.extend(spares.into_iter().take(size - new_pinned.len().min(size)));
            new_pinned.sort_unstable();
            new_pinned.truncate(size);

            let subset: Vec<DeviceId> = new_pinned.iter().map(|&d| DeviceId(d)).collect();
            let backend = fleet
                .with_devices(&subset)
                .expect("replacement subset is valid");
            let job = js.job.as_mut().expect("pinned implies built");
            job.migrate_to(&backend).expect("migration onto survivors");
            js.route = Some(collective_route(&js.req.spec, &backend));
            js.evictions.push(EvictionEvent {
                at_iteration: job.completed(),
                from_ndev,
                to_ndev: new_pinned.len(),
            });
            js.pinned = Some(new_pinned);
        }
    }

    /// Degrade the fleet interconnect, abort in-flight quanta that
    /// straddled the faulted wire, and re-plan every live job whose pinned
    /// subset spans both endpoints. Jobs touching at most one endpoint
    /// carve a subset topology that never contained the wire, so their
    /// plans — and plan-cache entries — stay valid untouched.
    #[allow(clippy::too_many_arguments)]
    fn process_link_fault(
        &self,
        fault: LinkFault,
        at: f64,
        fleet: &mut Backend,
        jobs: &mut [JobState],
        accounts: &mut [TenantAccount],
        active: &mut Vec<Active>,
        waiting: &mut WaitQueue,
        free_at: &mut [f64],
    ) {
        let (s, d) = (fault.src, fault.dst);
        if s >= fleet.num_devices() || d >= fleet.num_devices() || s == d {
            return;
        }
        let old_fingerprint = fleet.fingerprint();
        let degraded = match fault.factor {
            None => fleet.without_link(DeviceId(s), DeviceId(d)),
            Some(f) => fleet.with_degraded_link(DeviceId(s), DeviceId(d), f),
        }
        .expect("link fault endpoints validated above");
        // Whole-fleet plans keyed on the healthy interconnect are stale;
        // subset plans key on the *subset* fingerprint and are invalidated
        // per job below only when the subset actually contained the wire.
        neon_core::invalidate_backend(old_fingerprint);
        *fleet = degraded;

        // Abort in-flight quanta that straddled the wire: roll back to the
        // quantum-start checkpoint, free their devices at the fault time,
        // charge the wasted device-time.
        let mut i = 0;
        while i < active.len() {
            if active[i].devices.contains(&s) && active[i].devices.contains(&d) {
                let a = active.swap_remove(i);
                let js = &mut jobs[a.widx];
                let cp = a.cp.expect("link fault was armed, checkpoint captured");
                js.job.as_mut().expect("active job is built").restore(&cp);
                accounts[js.req.tenant].wasted_device_us +=
                    (at - a.start).max(0.0) * a.devices.len() as f64;
                for &dev in &a.devices {
                    free_at[dev] = at;
                }
                let (tenant, seq) = (js.req.tenant, js.seq);
                js.phase = Phase::Waiting;
                js.ready_since = at;
                waiting.push(a.widx, tenant, seq);
            } else {
                i += 1;
            }
        }

        // Re-plan every live job pinned across both endpoints: same
        // devices (nothing died), fresh subset backend carved from the
        // degraded fleet. The subset fingerprint changed, so the rebuild
        // recompiles, re-times every transfer, and re-routes collectives;
        // a route that relied on the wire flips and is recorded.
        for js in jobs.iter_mut() {
            if js.phase != Phase::Waiting {
                continue;
            }
            let Some(pinned) = &js.pinned else { continue };
            if !pinned.contains(&s) || !pinned.contains(&d) {
                continue;
            }
            let subset: Vec<DeviceId> = pinned.iter().map(|&dev| DeviceId(dev)).collect();
            let backend = fleet
                .with_devices(&subset)
                .expect("pinned subset is valid on the degraded fleet");
            let job = js.job.as_mut().expect("pinned implies built");
            job.migrate_to(&backend)
                .expect("same-size migration onto the degraded subset");
            let new_route = collective_route(&js.req.spec, &backend);
            if let Some(old_route) = js.route {
                if old_route != new_route {
                    js.route_changes.push(RouteChange {
                        at_iteration: job.completed(),
                        from: old_route,
                        to: new_route,
                    });
                }
            }
            js.route = Some(new_route);
        }
    }
}

/// Replay one job solo — same spec, a subset of `ndev` devices, the same
/// forced-migration history — and return its result fingerprint. This is
/// the bit-identity oracle: a multiplexed job's `result_bits` must equal
/// its solo replay's, preemption or not, device loss or not.
pub fn solo_run_bits(
    fleet: &Backend,
    spec: JobSpec,
    ndev: usize,
    options: SkeletonOptions,
    evictions: &[EvictionEvent],
) -> Result<u64> {
    let n = ndev.clamp(1, fleet.num_devices());
    let subset: Vec<DeviceId> = (0..n).map(DeviceId).collect();
    let backend = fleet.with_devices(&subset)?;
    let mut job = spec.build(&backend, options)?;
    for ev in evictions {
        debug_assert!(ev.at_iteration >= job.completed());
        job.advance(ev.at_iteration - job.completed());
        let sub: Vec<DeviceId> = (0..ev.to_ndev.clamp(1, fleet.num_devices()))
            .map(DeviceId)
            .collect();
        job.migrate_to(&fleet.with_devices(&sub)?)?;
    }
    job.advance(job.total().saturating_sub(job.completed()));
    Ok(job.result_bits())
}
