//! # neon-serve — multi-tenant job serving over a simulated device fleet
//!
//! The layers below this crate answer "how do I run *one* program well on
//! *one* set of devices": `neon-core` compiles a container sequence into an
//! occupancy-aware multi-queue schedule, `neon-apps` wraps solvers behind
//! the resumable [`neon_apps::SolverJob`] trait. This crate answers the
//! operational question on top: many tenants submit many jobs against one
//! shared fleet — who runs where, when, and who pays for what?
//!
//! The server ([`Server`]) is a discrete-event loop on the same virtual
//! clock the executors use, with four responsibilities:
//!
//! 1. **Admission control** — a bounded waiting queue
//!    ([`ServeConfig::queue_capacity`]); jobs arriving past the bound are
//!    shed immediately rather than queued forever.
//! 2. **Weighted fair queueing** ([`SchedPolicy::WeightedFair`]) — each
//!    tenant owns a virtual-time account charged
//!    `device_time / weight` per quantum; the next quantum always goes to
//!    the backlogged tenant with the smallest virtual time. Preemption
//!    happens only at iteration boundaries, so every job's results are
//!    **bit-identical** to a solo run ([`solo_run_bits`] is the oracle).
//! 3. **Space sharing** — jobs are pinned to device *subsets* carved from
//!    the fleet with [`neon_sys::Backend::with_devices`]; jobs on disjoint
//!    subsets overlap in virtual time. Equal-size subsets of a homogeneous
//!    fleet share a backend fingerprint, so all tenants compile through
//!    the *same* process-wide plan cache entry ([`ServeReport::cache_hits`]
//!    counts the sharing).
//! 4. **Per-tenant accounting** ([`TenantAccount`]) — kernel launches,
//!    bytes moved and link-busy time are sliced out of the shared
//!    simulator counters with [`neon_sys::CounterSnapshot`] deltas taken
//!    at quantum boundaries; device-time and queue-wait come from the
//!    event loop itself.
//!
//! Faults compose with serving: a scheduled [`DeviceLoss`] kills a fleet
//! device mid-run. In-flight quanta on that device roll back to their
//! quantum-start checkpoint, and every pinned job re-plans onto surviving
//! devices (a spare if one exists, a smaller subset otherwise) and
//! migrates its state through logical coordinates — then keeps going.
//! The forced migrations are recorded as [`EvictionEvent`]s so the solo
//! oracle can replay them and confirm bit-identity even across a loss.
//!
//! The interconnect is a fault domain of its own: a scheduled [`LinkFault`]
//! severs or degrades one fleet wire. Quanta straddling it roll back, jobs
//! pinned across both endpoints re-plan on the degraded fleet — same
//! devices, new link timing, possibly a new collective route (recorded as
//! [`RouteChange`]s when an island split flips hierarchical routing flat or
//! vice versa) — and results stay bit-identical to a healthy solo run,
//! because link speed never enters the numerics. Checkpoint captures are
//! priced on the virtual clock (state bytes over the host staging link)
//! and charged to the tenant that needed the protection
//! ([`TenantAccount::checkpoint_us`]).

pub mod server;
pub mod types;

pub use server::{solo_run_bits, Server};
pub use types::{
    jain_index, percentile, DeviceLoss, EvictionEvent, JobOutcome, JobRequest, LinkFault,
    RouteChange, SchedPolicy, ServeConfig, ServeReport, TenantAccount, TenantSpec,
};
