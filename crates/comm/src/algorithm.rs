//! Collective algorithms and the analytic cost model used to pick one.
//!
//! Three algorithms are modelled, mirroring the classic NCCL trade-off:
//!
//! * **Host-staged** — every device copies its full payload to the host,
//!   the host combines, every device copies the result back. All `2n`
//!   copies go through the shared host root complex, so they serialize.
//!   This is the naive baseline Neon's original reduce containers used.
//! * **Ring** — `2(n−1)` steps of shard-sized (`B/n`) neighbour transfers.
//!   Asymptotically bandwidth-optimal: total data moved per device is
//!   `2B(n−1)/n`, independent of `n`.
//! * **Binomial tree** — `⌈log₂ n⌉` reduce rounds to rank 0 followed by
//!   `⌈log₂ n⌉` broadcast rounds, each moving the full payload. Fewer
//!   latency terms than ring, more bytes: wins for small messages.
//!
//! [`choose`] evaluates [`estimate_us`] for all three against the actual
//! topology (link class decides whether peer steps overlap or serialize
//! through the root complex) and picks the cheapest — selection is driven
//! by both the interconnect and the message size.

use std::fmt;

use neon_sys::topology::{LinkKind, LinkModel, Topology};
use neon_sys::DeviceId;

/// A collective communication algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Stage every partial through the host (naive baseline).
    HostStaged,
    /// Ring with shard-sized steps (bandwidth-optimal).
    Ring,
    /// Binomial reduce-to-root + broadcast (latency-optimal).
    Tree,
    /// Topology-hierarchical: reduce inside each NVLink island, exchange
    /// one representative per island across the slow cross-island links,
    /// broadcast back inside. Crosses the slow links `2(r−1)` times for
    /// `r` islands — the minimum any spanning exchange can do — instead
    /// of paying them on every flat ring/tree step.
    Hierarchical,
}

impl Algorithm {
    /// The flat (topology-oblivious) algorithms, for sweeps.
    pub const FLAT: [Algorithm; 3] = [Algorithm::HostStaged, Algorithm::Ring, Algorithm::Tree];
    /// All algorithms, for sweeps.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::HostStaged,
        Algorithm::Ring,
        Algorithm::Tree,
        Algorithm::Hierarchical,
    ];
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Algorithm::HostStaged => "host-staged",
            Algorithm::Ring => "ring",
            Algorithm::Tree => "tree",
            Algorithm::Hierarchical => "hierarchical",
        })
    }
}

/// Which collective primitive is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Element-wise reduction, result on every rank.
    AllReduce,
    /// Element-wise reduction, each rank keeps one shard.
    ReduceScatter,
    /// Concatenate per-rank shards onto every rank.
    AllGather,
    /// Copy the root's payload to every rank.
    Broadcast,
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CollectiveKind::AllReduce => "all-reduce",
            CollectiveKind::ReduceScatter => "reduce-scatter",
            CollectiveKind::AllGather => "all-gather",
            CollectiveKind::Broadcast => "broadcast",
        })
    }
}

/// Analytic cost of running `kind` with `alg` over `ndev` devices and
/// `bytes` of payload, in microseconds.
///
/// `peer` is the device↔device link, `host` the device↔host staging link.
/// When the peer link is PCIe-class, concurrent steps of a round share the
/// host root complex and are charged serially; NVLink rounds overlap.
///
/// [`Algorithm::Hierarchical`]'s cost depends on the island structure,
/// which a single peer link cannot express — use
/// [`estimate_hierarchical_us`]; this function returns `f64::INFINITY`
/// for it so min-loops over [`Algorithm::ALL`] never pick it blindly.
pub fn estimate_us(
    alg: Algorithm,
    kind: CollectiveKind,
    ndev: usize,
    bytes: u64,
    peer: &LinkModel,
    host: &LinkModel,
) -> f64 {
    if ndev <= 1 {
        return 0.0;
    }
    let n = ndev as f64;
    let shard = (bytes as f64 / n).ceil() as u64;
    // Number of peer transfers that can run at once within one round.
    let serial = if peer.kind == LinkKind::PciE3 { n } else { 1.0 };
    match alg {
        Algorithm::HostStaged => {
            let full = host.transfer_time(bytes).as_us();
            let shard_t = host.transfer_time(shard).as_us();
            // All copies serialize through the root complex.
            match kind {
                CollectiveKind::AllReduce => 2.0 * n * full,
                CollectiveKind::ReduceScatter => n * full + n * shard_t,
                CollectiveKind::AllGather => n * shard_t + n * full,
                CollectiveKind::Broadcast => full + n * full,
            }
        }
        Algorithm::Ring => {
            let step = peer.transfer_time(shard).as_us() * serial;
            let steps = match kind {
                CollectiveKind::AllReduce => 2.0 * (n - 1.0),
                CollectiveKind::ReduceScatter | CollectiveKind::AllGather => n - 1.0,
                // Pipelined pass-along: latency of n−1 hops, bandwidth of
                // the full payload on the slowest hop.
                CollectiveKind::Broadcast => {
                    return (n - 1.0) * peer.latency_us * serial
                        + peer.transfer_time(bytes).as_us() * serial;
                }
            };
            steps * step
        }
        Algorithm::Tree => {
            let rounds = (ndev as f64).log2().ceil();
            // Within one round at most half the devices transmit at once.
            let round_serial = if peer.kind == LinkKind::PciE3 {
                (n / 2.0).max(1.0)
            } else {
                1.0
            };
            let round = peer.transfer_time(bytes).as_us() * round_serial;
            match kind {
                CollectiveKind::AllReduce => 2.0 * rounds * round,
                CollectiveKind::ReduceScatter | CollectiveKind::AllGather => {
                    rounds * round + n * peer.transfer_time(shard).as_us()
                }
                CollectiveKind::Broadcast => rounds * round,
            }
        }
        Algorithm::Hierarchical => f64::INFINITY,
    }
}

/// Analytic cost of the hierarchical schedule on this topology, in
/// microseconds: binomial rounds inside each NVLink island (islands
/// overlap on their dedicated links, so the deepest island dominates),
/// plus `r − 1` sequential full-payload transfers each way across the
/// slow cross-island links for `r` islands.
pub fn estimate_hierarchical_us(kind: CollectiveKind, bytes: u64, topo: &Topology) -> f64 {
    let ndev = topo.num_devices();
    if ndev <= 1 {
        return 0.0;
    }
    let islands = topo.islands();
    let r = islands.len() as f64;
    // Intra-island phase: binomial rounds over the island's internal link;
    // different islands run on disjoint dedicated links and overlap.
    let intra_rounds = islands
        .iter()
        .map(|i| (i.len() as f64).log2().ceil())
        .fold(0.0, f64::max);
    let intra = islands.iter().find(|i| i.len() > 1).map_or(0.0, |i| {
        intra_rounds * topo.transfer_time(i[0], i[1], bytes).as_us()
    });
    // Inter-island phase: representatives exchange sequentially over the
    // shared slow path (they would serialize through the root complex
    // anyway, and a sequential schedule avoids arbitration penalties).
    let inter_one_way = if islands.len() > 1 {
        (r - 1.0)
            * topo
                .transfer_time(islands[0][0], islands[1][0], bytes)
                .as_us()
    } else {
        0.0
    };
    match kind {
        CollectiveKind::AllReduce => 2.0 * intra + 2.0 * inter_one_way,
        CollectiveKind::Broadcast => intra + inter_one_way,
        // Reduce-to-root plus a shard scatter ≈ the all-reduce shape for
        // selection purposes (shards are cheaper than the full payload,
        // so this errs conservative).
        CollectiveKind::ReduceScatter | CollectiveKind::AllGather => {
            2.0 * intra + 2.0 * inter_one_way
        }
    }
}

/// Pick the cheapest *flat* algorithm for `kind` on this topology and
/// payload (hierarchical excluded — the pre-island selection behavior,
/// kept as the baseline the hierarchical schedule is measured against).
pub fn choose_flat(kind: CollectiveKind, bytes: u64, topo: &Topology) -> Algorithm {
    let ndev = topo.num_devices();
    if ndev <= 1 {
        return Algorithm::Ring;
    }
    let peer = *topo.link(DeviceId(0), DeviceId(ndev - 1));
    let host = *topo.host_link();
    let mut best = Algorithm::Ring;
    let mut best_t = f64::INFINITY;
    for alg in Algorithm::FLAT {
        let t = estimate_us(alg, kind, ndev, bytes, &peer, &host);
        if t < best_t {
            best_t = t;
            best = alg;
        }
    }
    best
}

/// Pick the cheapest algorithm for `kind` on this topology and payload.
///
/// Selection is driven by the topology's link class and the message size:
/// small payloads on NVLink favour the tree (fewest latency terms), large
/// payloads favour the ring (bandwidth-optimal), and PCIe boxes fall back
/// to host staging when serialization erases the peer algorithms' edge.
/// On *mixed* topologies — more than one island, at least one with an
/// NVLink interior, as produced by multi-box fleets and by asymmetric
/// survivor subsets after device eviction — the hierarchical schedule
/// competes too, whatever the island sizes (they need not be powers of
/// two or balanced).
pub fn choose(kind: CollectiveKind, bytes: u64, topo: &Topology) -> Algorithm {
    let ndev = topo.num_devices();
    if ndev <= 1 {
        return Algorithm::Ring;
    }
    let flat = choose_flat(kind, bytes, topo);
    let islands = topo.islands();
    let mixed = islands.len() > 1 && islands.iter().any(|i| i.len() > 1);
    if !mixed {
        return flat;
    }
    let peer = *topo.link(DeviceId(0), DeviceId(ndev - 1));
    let host = *topo.host_link();
    let flat_t = estimate_us(flat, kind, ndev, bytes, &peer, &host);
    if estimate_hierarchical_us(kind, bytes, topo) < flat_t {
        Algorithm::Hierarchical
    } else {
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_nvlink_all_reduce_prefers_tree() {
        let topo = Topology::nvlink_all_to_all(8, 1555.0);
        assert_eq!(choose(CollectiveKind::AllReduce, 8, &topo), Algorithm::Tree);
    }

    #[test]
    fn large_nvlink_all_reduce_prefers_ring() {
        let topo = Topology::nvlink_all_to_all(8, 1555.0);
        assert_eq!(
            choose(CollectiveKind::AllReduce, 256 << 20, &topo),
            Algorithm::Ring
        );
    }

    #[test]
    fn selection_is_size_monotone_on_nvlink() {
        // Once ring wins it keeps winning as payloads grow.
        let topo = Topology::nvlink_all_to_all(8, 1555.0);
        let mut seen_ring = false;
        for shift in 0..30 {
            let alg = choose(CollectiveKind::AllReduce, 1u64 << shift, &topo);
            if seen_ring {
                assert_eq!(alg, Algorithm::Ring, "regressed at 2^{shift} bytes");
            }
            seen_ring |= alg == Algorithm::Ring;
        }
        assert!(seen_ring, "ring never selected");
    }

    #[test]
    fn pcie_small_messages_prefer_host_staging() {
        // With every peer step serialized through the root complex, the
        // latency-heavy peer algorithms lose to plain host staging.
        let topo = Topology::pcie_host_staged(8, 870.0);
        assert_eq!(
            choose(CollectiveKind::AllReduce, 8, &topo),
            Algorithm::HostStaged
        );
    }

    #[test]
    fn estimates_are_positive_and_finite() {
        let peer = LinkModel::nvlink();
        let host = LinkModel::pcie4_host();
        for alg in Algorithm::FLAT {
            for kind in [
                CollectiveKind::AllReduce,
                CollectiveKind::ReduceScatter,
                CollectiveKind::AllGather,
                CollectiveKind::Broadcast,
            ] {
                let t = estimate_us(alg, kind, 4, 1 << 20, &peer, &host);
                assert!(t.is_finite() && t > 0.0, "{alg}/{kind}: {t}");
            }
        }
        // The hierarchical estimate needs the topology, not a single link.
        assert_eq!(
            estimate_us(
                Algorithm::Hierarchical,
                CollectiveKind::AllReduce,
                4,
                1 << 20,
                &peer,
                &host
            ),
            f64::INFINITY
        );
        let topo = Topology::nvlink_islands(&[2, 2], 1555.0);
        let t = estimate_hierarchical_us(CollectiveKind::AllReduce, 1 << 20, &topo);
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn mixed_topologies_select_hierarchical() {
        for sizes in [&[2usize, 2][..], &[4, 4], &[3, 1], &[2, 1, 1], &[1, 4]] {
            let topo = Topology::nvlink_islands(sizes, 1555.0);
            for bytes in [8u64, 64 << 10, 16 << 20] {
                assert_eq!(
                    choose(CollectiveKind::AllReduce, bytes, &topo),
                    Algorithm::Hierarchical,
                    "islands {sizes:?}, {bytes} B"
                );
            }
        }
    }

    #[test]
    fn pure_topologies_never_select_hierarchical() {
        for topo in [
            Topology::nvlink_all_to_all(8, 1555.0),
            Topology::pcie_host_staged(8, 870.0),
        ] {
            for bytes in [8u64, 64 << 10, 16 << 20] {
                let alg = choose(CollectiveKind::AllReduce, bytes, &topo);
                assert_ne!(alg, Algorithm::Hierarchical, "{bytes} B");
                assert_eq!(alg, choose_flat(CollectiveKind::AllReduce, bytes, &topo));
            }
        }
    }

    #[test]
    fn asymmetric_survivor_subsets_select_hierarchical() {
        // Two 4-GPU boxes; a device loss leaves a 3+2 survivor subset.
        let fleet = Topology::nvlink_islands(&[4, 4], 1555.0);
        let survivors = fleet.with_devices(&[
            DeviceId(0),
            DeviceId(1),
            DeviceId(2),
            DeviceId(5),
            DeviceId(6),
        ]);
        assert_eq!(survivors.islands().len(), 2);
        for bytes in [8u64, 1 << 20] {
            assert_eq!(
                choose(CollectiveKind::AllReduce, bytes, &survivors),
                Algorithm::Hierarchical
            );
        }
        // A subset that falls entirely inside one island is pure NVLink
        // again and must not pretend to be hierarchical.
        let inside = fleet.with_devices(&[DeviceId(0), DeviceId(1), DeviceId(2)]);
        assert_ne!(
            choose(CollectiveKind::AllReduce, 1 << 20, &inside),
            Algorithm::Hierarchical
        );
    }

    #[test]
    fn single_device_costs_nothing() {
        let peer = LinkModel::nvlink();
        let host = LinkModel::pcie4_host();
        assert_eq!(
            estimate_us(
                Algorithm::Ring,
                CollectiveKind::AllReduce,
                1,
                1 << 20,
                &peer,
                &host
            ),
            0.0
        );
    }

    #[test]
    fn display_labels() {
        assert_eq!(Algorithm::Ring.to_string(), "ring");
        assert_eq!(Algorithm::HostStaged.to_string(), "host-staged");
        assert_eq!(Algorithm::Hierarchical.to_string(), "hierarchical");
        assert_eq!(CollectiveKind::AllReduce.to_string(), "all-reduce");
    }
}
