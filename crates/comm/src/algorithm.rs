//! Collective algorithms and the analytic cost model used to pick one.
//!
//! Three algorithms are modelled, mirroring the classic NCCL trade-off:
//!
//! * **Host-staged** — every device copies its full payload to the host,
//!   the host combines, every device copies the result back. All `2n`
//!   copies go through the shared host root complex, so they serialize.
//!   This is the naive baseline Neon's original reduce containers used.
//! * **Ring** — `2(n−1)` steps of shard-sized (`B/n`) neighbour transfers.
//!   Asymptotically bandwidth-optimal: total data moved per device is
//!   `2B(n−1)/n`, independent of `n`.
//! * **Binomial tree** — `⌈log₂ n⌉` reduce rounds to rank 0 followed by
//!   `⌈log₂ n⌉` broadcast rounds, each moving the full payload. Fewer
//!   latency terms than ring, more bytes: wins for small messages.
//!
//! [`choose`] evaluates [`estimate_us`] for all three against the actual
//! topology (link class decides whether peer steps overlap or serialize
//! through the root complex) and picks the cheapest — selection is driven
//! by both the interconnect and the message size.

use std::fmt;

use neon_sys::topology::{LinkKind, LinkModel, Topology};
use neon_sys::DeviceId;

/// A collective communication algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Stage every partial through the host (naive baseline).
    HostStaged,
    /// Ring with shard-sized steps (bandwidth-optimal).
    Ring,
    /// Binomial reduce-to-root + broadcast (latency-optimal).
    Tree,
}

impl Algorithm {
    /// All algorithms, for sweeps.
    pub const ALL: [Algorithm; 3] = [Algorithm::HostStaged, Algorithm::Ring, Algorithm::Tree];
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Algorithm::HostStaged => "host-staged",
            Algorithm::Ring => "ring",
            Algorithm::Tree => "tree",
        })
    }
}

/// Which collective primitive is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Element-wise reduction, result on every rank.
    AllReduce,
    /// Element-wise reduction, each rank keeps one shard.
    ReduceScatter,
    /// Concatenate per-rank shards onto every rank.
    AllGather,
    /// Copy the root's payload to every rank.
    Broadcast,
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CollectiveKind::AllReduce => "all-reduce",
            CollectiveKind::ReduceScatter => "reduce-scatter",
            CollectiveKind::AllGather => "all-gather",
            CollectiveKind::Broadcast => "broadcast",
        })
    }
}

/// Analytic cost of running `kind` with `alg` over `ndev` devices and
/// `bytes` of payload, in microseconds.
///
/// `peer` is the device↔device link, `host` the device↔host staging link.
/// When the peer link is PCIe-class, concurrent steps of a round share the
/// host root complex and are charged serially; NVLink rounds overlap.
pub fn estimate_us(
    alg: Algorithm,
    kind: CollectiveKind,
    ndev: usize,
    bytes: u64,
    peer: &LinkModel,
    host: &LinkModel,
) -> f64 {
    if ndev <= 1 {
        return 0.0;
    }
    let n = ndev as f64;
    let shard = (bytes as f64 / n).ceil() as u64;
    // Number of peer transfers that can run at once within one round.
    let serial = if peer.kind == LinkKind::PciE3 { n } else { 1.0 };
    match alg {
        Algorithm::HostStaged => {
            let full = host.transfer_time(bytes).as_us();
            let shard_t = host.transfer_time(shard).as_us();
            // All copies serialize through the root complex.
            match kind {
                CollectiveKind::AllReduce => 2.0 * n * full,
                CollectiveKind::ReduceScatter => n * full + n * shard_t,
                CollectiveKind::AllGather => n * shard_t + n * full,
                CollectiveKind::Broadcast => full + n * full,
            }
        }
        Algorithm::Ring => {
            let step = peer.transfer_time(shard).as_us() * serial;
            let steps = match kind {
                CollectiveKind::AllReduce => 2.0 * (n - 1.0),
                CollectiveKind::ReduceScatter | CollectiveKind::AllGather => n - 1.0,
                // Pipelined pass-along: latency of n−1 hops, bandwidth of
                // the full payload on the slowest hop.
                CollectiveKind::Broadcast => {
                    return (n - 1.0) * peer.latency_us * serial
                        + peer.transfer_time(bytes).as_us() * serial;
                }
            };
            steps * step
        }
        Algorithm::Tree => {
            let rounds = (ndev as f64).log2().ceil();
            // Within one round at most half the devices transmit at once.
            let round_serial = if peer.kind == LinkKind::PciE3 {
                (n / 2.0).max(1.0)
            } else {
                1.0
            };
            let round = peer.transfer_time(bytes).as_us() * round_serial;
            match kind {
                CollectiveKind::AllReduce => 2.0 * rounds * round,
                CollectiveKind::ReduceScatter | CollectiveKind::AllGather => {
                    rounds * round + n * peer.transfer_time(shard).as_us()
                }
                CollectiveKind::Broadcast => rounds * round,
            }
        }
    }
}

/// Pick the cheapest algorithm for `kind` on this topology and payload.
///
/// Selection is driven by the topology's link class and the message size:
/// small payloads on NVLink favour the tree (fewest latency terms), large
/// payloads favour the ring (bandwidth-optimal), and PCIe boxes fall back
/// to host staging when serialization erases the peer algorithms' edge.
pub fn choose(kind: CollectiveKind, bytes: u64, topo: &Topology) -> Algorithm {
    let ndev = topo.num_devices();
    if ndev <= 1 {
        return Algorithm::Ring;
    }
    let peer = *topo.link(DeviceId(0), DeviceId(ndev - 1));
    let host = *topo.host_link();
    let mut best = Algorithm::Ring;
    let mut best_t = f64::INFINITY;
    for alg in Algorithm::ALL {
        let t = estimate_us(alg, kind, ndev, bytes, &peer, &host);
        if t < best_t {
            best_t = t;
            best = alg;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_nvlink_all_reduce_prefers_tree() {
        let topo = Topology::nvlink_all_to_all(8, 1555.0);
        assert_eq!(choose(CollectiveKind::AllReduce, 8, &topo), Algorithm::Tree);
    }

    #[test]
    fn large_nvlink_all_reduce_prefers_ring() {
        let topo = Topology::nvlink_all_to_all(8, 1555.0);
        assert_eq!(
            choose(CollectiveKind::AllReduce, 256 << 20, &topo),
            Algorithm::Ring
        );
    }

    #[test]
    fn selection_is_size_monotone_on_nvlink() {
        // Once ring wins it keeps winning as payloads grow.
        let topo = Topology::nvlink_all_to_all(8, 1555.0);
        let mut seen_ring = false;
        for shift in 0..30 {
            let alg = choose(CollectiveKind::AllReduce, 1u64 << shift, &topo);
            if seen_ring {
                assert_eq!(alg, Algorithm::Ring, "regressed at 2^{shift} bytes");
            }
            seen_ring |= alg == Algorithm::Ring;
        }
        assert!(seen_ring, "ring never selected");
    }

    #[test]
    fn pcie_small_messages_prefer_host_staging() {
        // With every peer step serialized through the root complex, the
        // latency-heavy peer algorithms lose to plain host staging.
        let topo = Topology::pcie_host_staged(8, 870.0);
        assert_eq!(
            choose(CollectiveKind::AllReduce, 8, &topo),
            Algorithm::HostStaged
        );
    }

    #[test]
    fn estimates_are_positive_and_finite() {
        let peer = LinkModel::nvlink();
        let host = LinkModel::pcie4_host();
        for alg in Algorithm::ALL {
            for kind in [
                CollectiveKind::AllReduce,
                CollectiveKind::ReduceScatter,
                CollectiveKind::AllGather,
                CollectiveKind::Broadcast,
            ] {
                let t = estimate_us(alg, kind, 4, 1 << 20, &peer, &host);
                assert!(t.is_finite() && t > 0.0, "{alg}/{kind}: {t}");
            }
        }
    }

    #[test]
    fn single_device_costs_nothing() {
        let peer = LinkModel::nvlink();
        let host = LinkModel::pcie4_host();
        assert_eq!(
            estimate_us(
                Algorithm::Ring,
                CollectiveKind::AllReduce,
                1,
                1 << 20,
                &peer,
                &host
            ),
            0.0
        );
    }

    #[test]
    fn display_labels() {
        assert_eq!(Algorithm::Ring.to_string(), "ring");
        assert_eq!(Algorithm::HostStaged.to_string(), "host-staged");
        assert_eq!(CollectiveKind::AllReduce.to_string(), "all-reduce");
    }
}
