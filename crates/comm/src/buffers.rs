//! Functional collectives on per-device host buffers.
//!
//! These implement the *data* semantics of the collectives, independent of
//! the algorithm the timing layer schedules. Reductions always combine in
//! **canonical rank order** (`((b₀ ⊕ b₁) ⊕ b₂) ⊕ …`), which makes the result
//! bit-identical across algorithms even for non-associative floating-point
//! `⊕` — a deliberate deviation from real NCCL, where ring and tree orders
//! differ in the last ulps. Determinism is worth more than fidelity here:
//! it is what lets the property tests assert exact equality between a
//! collective result and a sequential fold.

/// All-reduce: every buffer becomes the element-wise reduction (in rank
/// order) of all buffers.
///
/// All buffers must have the same length. Panics otherwise.
pub fn all_reduce<T: Copy>(bufs: &mut [Vec<T>], mut combine: impl FnMut(T, T) -> T) {
    let Some(len) = check_uniform(bufs) else {
        return;
    };
    for j in 0..len {
        let mut acc = bufs[0][j];
        for r in 1..bufs.len() {
            acc = combine(acc, bufs[r][j]);
        }
        for buf in bufs.iter_mut() {
            buf[j] = acc;
        }
    }
}

/// Reduce-scatter: the element-wise reduction (in rank order) is split into
/// contiguous shards, and each rank's buffer is replaced by its own shard.
///
/// Shard `r` covers indices `[r·len/n, (r+1)·len/n)`, so uneven lengths are
/// distributed without padding. All buffers must have the same length.
pub fn reduce_scatter<T: Copy>(bufs: &mut [Vec<T>], mut combine: impl FnMut(T, T) -> T) {
    let Some(len) = check_uniform(bufs) else {
        return;
    };
    let n = bufs.len();
    let mut reduced = bufs[0].clone();
    for j in 0..len {
        for r in 1..n {
            reduced[j] = combine(reduced[j], bufs[r][j]);
        }
    }
    for (r, buf) in bufs.iter_mut().enumerate() {
        *buf = reduced[shard_range(len, n, r)].to_vec();
    }
}

/// All-gather: every rank's buffer is replaced by the concatenation of all
/// buffers in rank order. Buffers may have different lengths.
pub fn all_gather<T: Copy>(bufs: &mut [Vec<T>]) {
    if bufs.is_empty() {
        return;
    }
    let cat: Vec<T> = bufs.iter().flat_map(|b| b.iter().copied()).collect();
    for buf in bufs.iter_mut() {
        *buf = cat.clone();
    }
}

/// Broadcast: every rank's buffer is replaced by a copy of `root`'s buffer.
///
/// Panics if `root` is out of range.
pub fn broadcast<T: Copy>(bufs: &mut [Vec<T>], root: usize) {
    assert!(root < bufs.len(), "broadcast root {root} out of range");
    let src = bufs[root].clone();
    for buf in bufs.iter_mut() {
        *buf = src.clone();
    }
}

/// The contiguous index range of rank `r`'s shard in a length-`len` vector
/// split over `n` ranks.
pub fn shard_range(len: usize, n: usize, r: usize) -> std::ops::Range<usize> {
    (r * len / n)..((r + 1) * len / n)
}

fn check_uniform<T>(bufs: &[Vec<T>]) -> Option<usize> {
    let first = bufs.first()?;
    let len = first.len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "collective buffers must have uniform length"
    );
    Some(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reduce_matches_sequential_fold() {
        let mut bufs = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
        all_reduce(&mut bufs, |a, b| a + b);
        for b in &bufs {
            assert_eq!(b, &vec![111.0, 222.0]);
        }
    }

    #[test]
    fn all_reduce_preserves_rank_order_for_non_associative_ops() {
        // Subtraction is order-sensitive: ((0 − 1) − 2) = −3.
        let mut bufs = vec![vec![0.0], vec![1.0], vec![2.0]];
        all_reduce(&mut bufs, |a, b| a - b);
        assert_eq!(bufs[0], vec![-3.0]);
    }

    #[test]
    fn reduce_scatter_shards_the_reduction() {
        let mut bufs = vec![vec![1, 2, 3, 4, 5], vec![10, 20, 30, 40, 50]];
        reduce_scatter(&mut bufs, |a, b| a + b);
        assert_eq!(bufs[0], vec![11, 22]);
        assert_eq!(bufs[1], vec![33, 44, 55]);
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let mut bufs = vec![vec![1], vec![2, 3], vec![4]];
        all_gather(&mut bufs);
        for b in &bufs {
            assert_eq!(b, &vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce() {
        let data = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let mut a = data.clone();
        all_reduce(&mut a, |x, y| x + y);
        let mut b = data;
        reduce_scatter(&mut b, |x, y| x + y);
        all_gather(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn broadcast_copies_root() {
        let mut bufs = vec![vec![0; 3], vec![7; 3], vec![0; 3]];
        broadcast(&mut bufs, 1);
        for b in &bufs {
            assert_eq!(b, &vec![7; 3]);
        }
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let mut bufs = vec![vec![3.5, 4.5]];
        all_reduce(&mut bufs, |a, b| a + b);
        assert_eq!(bufs[0], vec![3.5, 4.5]);
        all_gather(&mut bufs);
        assert_eq!(bufs[0], vec![3.5, 4.5]);
    }

    #[test]
    #[should_panic(expected = "uniform length")]
    fn mismatched_lengths_panic() {
        let mut bufs = vec![vec![1.0], vec![1.0, 2.0]];
        all_reduce(&mut bufs, |a, b| a + b);
    }
}
