//! Timing schedules for the collectives on a [`QueueSim`] virtual clock.
//!
//! The engine turns one collective call into a set of transfer spans on the
//! participating devices' collective lanes. Every span goes through
//! [`QueueSim::enqueue_transfer`] with the link resources named by the
//! [`Topology`], so shared physical links (the PCIe host root complex)
//! serialize concurrent steps while dedicated NVLink pairs overlap freely.
//!
//! Large payloads are **pipelined**: each logical step is split into up to
//! [`EngineConfig::max_chunks`] chunks of roughly
//! [`EngineConfig::chunk_bytes`], and a chunk of step `t+1` may start as
//! soon as that chunk of step `t` has arrived — the classic bandwidth
//! optimization that lets a ring approach link rate instead of paying the
//! full store-and-forward delay per step.
//!
//! Only *timing* lives here; the data semantics are in [`crate::buffers`].
//! Reduction compute time is folded into the link latency term, as in the
//! rest of the simulator's calibration.
//!
//! [`QueueSim`]: neon_sys::QueueSim
//! [`QueueSim::enqueue_transfer`]: neon_sys::QueueSim::enqueue_transfer
//! [`Topology`]: neon_sys::Topology

use neon_sys::clock::SimTime;
use neon_sys::queue::{QueueSim, StreamId};
use neon_sys::topology::{LinkResourceId, Topology};
use neon_sys::trace::SpanKind;
use neon_sys::{DeviceId, FaultSiteKind, FaultVerdict};

use crate::algorithm::{choose, Algorithm, CollectiveKind};

/// Tunables of a [`CollectiveEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Force a specific algorithm; `None` selects automatically per call.
    pub algorithm: Option<Algorithm>,
    /// Pipelining granularity: steps larger than this are split into chunks.
    pub chunk_bytes: u64,
    /// Upper bound on chunks per step (bounds simulation cost).
    pub max_chunks: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            algorithm: None,
            chunk_bytes: 1 << 20,
            max_chunks: 8,
        }
    }
}

/// Result of scheduling one collective.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveTiming {
    /// Algorithm that was actually used.
    pub algorithm: Algorithm,
    /// Per-device completion time (when the result is usable on the device).
    pub done: Vec<SimTime>,
    /// Total link-occupied time summed over all spans of this collective.
    pub busy: SimTime,
}

impl CollectiveTiming {
    /// The collective's overall completion time.
    pub fn makespan(&self) -> SimTime {
        self.done.iter().copied().fold(SimTime::ZERO, SimTime::max)
    }
}

/// Schedules collectives over a fixed topology.
#[derive(Debug, Clone)]
pub struct CollectiveEngine {
    topo: Topology,
    config: EngineConfig,
}

impl CollectiveEngine {
    /// Engine with default configuration (automatic algorithm selection).
    pub fn new(topo: Topology) -> Self {
        CollectiveEngine {
            topo,
            config: EngineConfig::default(),
        }
    }

    /// Engine with an explicit configuration.
    pub fn with_config(topo: Topology, config: EngineConfig) -> Self {
        CollectiveEngine { topo, config }
    }

    /// The topology this engine schedules against.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The algorithm that will be used for a payload of `bytes`.
    pub fn select(&self, kind: CollectiveKind, bytes: u64) -> Algorithm {
        self.config
            .algorithm
            .unwrap_or_else(|| choose(kind, bytes, &self.topo))
    }

    /// Schedule one collective of `bytes` total payload on `q`.
    ///
    /// `earliest[d]` is the time device `d`'s contribution is ready; spans
    /// are enqueued on stream `lane` of each device. Returns per-device
    /// completion times. With a single device this is a no-op completing at
    /// `earliest[0]`.
    pub fn schedule(
        &self,
        q: &mut QueueSim,
        kind: CollectiveKind,
        bytes: u64,
        earliest: &[SimTime],
        lane: usize,
        name: &str,
    ) -> CollectiveTiming {
        let n = self.topo.num_devices();
        assert_eq!(earliest.len(), n, "one ready time per device");
        let algorithm = self.select(kind, bytes);
        if n <= 1 {
            return CollectiveTiming {
                algorithm,
                done: earliest.to_vec(),
                busy: SimTime::ZERO,
            };
        }
        let busy_before: SimTime = (0..n).map(|d| q.now(self.stream(d, lane))).sum();
        let done = match algorithm {
            Algorithm::HostStaged => self.host_staged(q, kind, bytes, earliest, lane, name),
            Algorithm::Ring => self.ring(q, kind, bytes, earliest, lane, name),
            Algorithm::Tree => self.tree(q, kind, bytes, earliest, lane, name),
            Algorithm::Hierarchical => self.hierarchical(q, kind, bytes, earliest, lane, name),
        };
        let busy_after: SimTime = (0..n).map(|d| q.now(self.stream(d, lane))).sum();
        CollectiveTiming {
            algorithm,
            done,
            busy: busy_after - busy_before,
        }
    }

    fn stream(&self, device: usize, lane: usize) -> StreamId {
        StreamId::new(DeviceId(device), lane)
    }

    /// Enqueue one collective chunk transfer toward destination rank `dst`
    /// through the fault-aware queue path. When the queue carries a fault
    /// injector, the chunk is observed as a [`FaultSiteKind::Link`]
    /// operation on the destination device: transient verdicts charge the
    /// failed attempts plus exponential backoff on the sender's lane at
    /// **chunk granularity** (only the faulted chunk repeats, the rest of
    /// the step streams on), and an escaped verdict marks the injector's
    /// escape site without ever occupying the wire — the executor aborts
    /// the iteration before the collective commits.
    #[allow(clippy::too_many_arguments)]
    fn send_chunk(
        &self,
        q: &mut QueueSim,
        stream: StreamId,
        ready: SimTime,
        dur: SimTime,
        res: &[LinkResourceId],
        bytes: u64,
        dst: usize,
        label: &str,
    ) -> (SimTime, SimTime) {
        let (verdict, backoff) = match q.fault_injector() {
            Some(inj) => (
                inj.observe(DeviceId(dst), FaultSiteKind::Link),
                inj.policy().backoff,
            ),
            None => (FaultVerdict::Clean, SimTime::ZERO),
        };
        q.enqueue_transfer_with_faults(
            stream,
            ready,
            dur,
            res,
            bytes,
            label,
            SpanKind::Collective,
            verdict,
            backoff,
        )
    }

    /// Split `step_bytes` into `(chunks, bytes_per_chunk)`.
    fn chunks(&self, step_bytes: u64) -> (usize, u64) {
        if step_bytes == 0 {
            return (1, 0);
        }
        let c = step_bytes
            .div_ceil(self.config.chunk_bytes)
            .clamp(1, self.config.max_chunks as u64);
        (c as usize, step_bytes.div_ceil(c))
    }

    /// Finish times: the later of each device's last chunk arrival and its
    /// own lane clock (its sends must retire too).
    fn finish(&self, q: &QueueSim, lane: usize, ready: &[Vec<SimTime>]) -> Vec<SimTime> {
        ready
            .iter()
            .enumerate()
            .map(|(d, chunks)| {
                chunks
                    .iter()
                    .copied()
                    .fold(q.now(self.stream(d, lane)), SimTime::max)
            })
            .collect()
    }

    /// Ring schedule. All-reduce runs `2(n−1)` shard steps (reduce-scatter
    /// phase then all-gather phase); reduce-scatter / all-gather run one
    /// phase; broadcast pipelines the payload along the ring.
    fn ring(
        &self,
        q: &mut QueueSim,
        kind: CollectiveKind,
        bytes: u64,
        earliest: &[SimTime],
        lane: usize,
        name: &str,
    ) -> Vec<SimTime> {
        let n = self.topo.num_devices();
        let step_bytes = match kind {
            CollectiveKind::Broadcast => bytes,
            _ => bytes.div_ceil(n as u64),
        };
        let steps = match kind {
            CollectiveKind::AllReduce => 2 * (n - 1),
            _ => n - 1,
        };
        let (c, cb) = self.chunks(step_bytes);
        let mut ready: Vec<Vec<SimTime>> = earliest.iter().map(|&t| vec![t; c]).collect();
        for step in 0..steps {
            let prev = ready.clone();
            for src in 0..n {
                // Broadcast flows strictly root→…→last; reductions use the
                // full ring every step.
                if kind == CollectiveKind::Broadcast && src != step {
                    continue;
                }
                let dst = (src + 1) % n;
                let dur = self.topo.transfer_time(DeviceId(src), DeviceId(dst), cb);
                let res = self
                    .topo
                    .link_resources(DeviceId(src), DeviceId(dst))
                    .to_vec();
                for k in 0..c {
                    let label = format!("{name}:ring{step}.{k}:{src}->{dst}");
                    let (_, end) = self.send_chunk(
                        q,
                        self.stream(src, lane),
                        prev[src][k],
                        dur,
                        &res,
                        cb,
                        dst,
                        &label,
                    );
                    ready[dst][k] = ready[dst][k].max(end);
                }
            }
        }
        self.finish(q, lane, &ready)
    }

    /// Binomial-tree schedule: reduce to rank 0 in `⌈log₂ n⌉` rounds, then
    /// broadcast back out in the mirror order. Broadcast-only collectives
    /// run just the second half; reduce-scatter runs the first half plus a
    /// shard scatter from the root.
    fn tree(
        &self,
        q: &mut QueueSim,
        kind: CollectiveKind,
        bytes: u64,
        earliest: &[SimTime],
        lane: usize,
        name: &str,
    ) -> Vec<SimTime> {
        let n = self.topo.num_devices();
        let (c, cb) = self.chunks(bytes);
        let mut ready: Vec<Vec<SimTime>> = earliest.iter().map(|&t| vec![t; c]).collect();
        let needs_reduce = matches!(
            kind,
            CollectiveKind::AllReduce | CollectiveKind::ReduceScatter | CollectiveKind::AllGather
        );
        let mut r = 1;
        if needs_reduce {
            while r < n {
                for dst in (0..n).step_by(2 * r) {
                    let src = dst + r;
                    if src >= n {
                        continue;
                    }
                    self.tree_send(q, &mut ready, src, dst, cb, lane, name, "tree-up", true);
                }
                r *= 2;
            }
        } else {
            while r < n {
                r *= 2;
            }
        }
        match kind {
            CollectiveKind::AllReduce | CollectiveKind::Broadcast | CollectiveKind::AllGather => {
                while r > 1 {
                    r /= 2;
                    for src in (0..n).step_by(2 * r) {
                        let dst = src + r;
                        if dst >= n {
                            continue;
                        }
                        self.tree_send(q, &mut ready, src, dst, cb, lane, name, "tree-down", false);
                    }
                }
            }
            CollectiveKind::ReduceScatter => {
                // Root scatters shard-sized results to every other rank.
                let shard = bytes.div_ceil(n as u64);
                let root_ready = ready[0].iter().copied().fold(SimTime::ZERO, SimTime::max);
                for dst in 1..n {
                    let dur = self.topo.transfer_time(DeviceId(0), DeviceId(dst), shard);
                    let res = self
                        .topo
                        .link_resources(DeviceId(0), DeviceId(dst))
                        .to_vec();
                    let label = format!("{name}:scatter:0->{dst}");
                    let (_, end) = self.send_chunk(
                        q,
                        self.stream(0, lane),
                        root_ready,
                        dur,
                        &res,
                        shard,
                        dst,
                        &label,
                    );
                    for k in 0..c {
                        ready[dst][k] = end;
                    }
                }
            }
        }
        self.finish(q, lane, &ready)
    }

    #[allow(clippy::too_many_arguments)]
    fn tree_send(
        &self,
        q: &mut QueueSim,
        ready: &mut [Vec<SimTime>],
        src: usize,
        dst: usize,
        chunk_bytes: u64,
        lane: usize,
        name: &str,
        dir: &str,
        combine: bool,
    ) {
        let dur = self
            .topo
            .transfer_time(DeviceId(src), DeviceId(dst), chunk_bytes);
        let res = self
            .topo
            .link_resources(DeviceId(src), DeviceId(dst))
            .to_vec();
        for k in 0..ready[src].len() {
            let label = format!("{name}:{dir}.{k}:{src}->{dst}");
            let (_, end) = self.send_chunk(
                q,
                self.stream(src, lane),
                ready[src][k],
                dur,
                &res,
                chunk_bytes,
                dst,
                &label,
            );
            // A reduce combines with the receiver's operand; a broadcast
            // replaces it.
            ready[dst][k] = if combine { ready[dst][k].max(end) } else { end };
        }
    }

    /// Hierarchical schedule: binomial reduce to each NVLink island's
    /// leader over the island's dedicated links (islands overlap), a
    /// sequential representative exchange across the slow cross-island
    /// links (they share the host root complex, so a sequential schedule
    /// costs the same serialization without arbitration penalties), then
    /// binomial broadcast back inside each island. The slow path is
    /// crossed `2(r−1)` times for `r` islands — the spanning minimum —
    /// instead of on every flat ring/tree step. Degenerates gracefully:
    /// one island is a plain binomial tree, all-singleton islands a
    /// sequential leader exchange; island sizes may be arbitrary (uneven,
    /// non-power-of-two survivor subsets included).
    fn hierarchical(
        &self,
        q: &mut QueueSim,
        kind: CollectiveKind,
        bytes: u64,
        earliest: &[SimTime],
        lane: usize,
        name: &str,
    ) -> Vec<SimTime> {
        let n = self.topo.num_devices();
        let islands = self.topo.islands();
        // Leaders: each island's smallest member. Island 0 contains device
        // 0, so the global root is rank 0 — same convention as the flat
        // algorithms.
        let leaders: Vec<usize> = islands.iter().map(|i| i[0].0).collect();
        let (c, cb) = self.chunks(bytes);
        let mut ready: Vec<Vec<SimTime>> = earliest.iter().map(|&t| vec![t; c]).collect();
        let needs_reduce = matches!(
            kind,
            CollectiveKind::AllReduce | CollectiveKind::ReduceScatter | CollectiveKind::AllGather
        );
        if needs_reduce {
            for island in &islands {
                self.island_sweep(q, &mut ready, island, cb, lane, name, true);
            }
            for &l in leaders.iter().skip(1) {
                self.tree_send(
                    q, &mut ready, l, leaders[0], cb, lane, name, "inter-up", true,
                );
            }
        }
        match kind {
            CollectiveKind::AllReduce | CollectiveKind::Broadcast | CollectiveKind::AllGather => {
                for &l in leaders.iter().skip(1) {
                    let dir = "inter-down";
                    self.tree_send(q, &mut ready, leaders[0], l, cb, lane, name, dir, false);
                }
                for island in &islands {
                    self.island_sweep(q, &mut ready, island, cb, lane, name, false);
                }
            }
            CollectiveKind::ReduceScatter => {
                // The global root scatters shard-sized results directly.
                let shard = bytes.div_ceil(n as u64);
                let root = leaders[0];
                let root_ready = ready[root]
                    .iter()
                    .copied()
                    .fold(SimTime::ZERO, SimTime::max);
                for dst in 0..n {
                    if dst == root {
                        continue;
                    }
                    let dur = self
                        .topo
                        .transfer_time(DeviceId(root), DeviceId(dst), shard);
                    let res = self
                        .topo
                        .link_resources(DeviceId(root), DeviceId(dst))
                        .to_vec();
                    let label = format!("{name}:hier-scatter:{root}->{dst}");
                    let (_, end) = self.send_chunk(
                        q,
                        self.stream(root, lane),
                        root_ready,
                        dur,
                        &res,
                        shard,
                        dst,
                        &label,
                    );
                    for k in 0..c {
                        ready[dst][k] = end;
                    }
                }
            }
        }
        self.finish(q, lane, &ready)
    }

    /// One binomial sweep inside an island: `combine == true` reduces the
    /// members onto the leader (`island[0]`), `combine == false`
    /// broadcasts the leader's payload out in mirror order. Positions are
    /// island-relative, so arbitrary (renumbered, uneven) member sets
    /// work.
    #[allow(clippy::too_many_arguments)]
    fn island_sweep(
        &self,
        q: &mut QueueSim,
        ready: &mut [Vec<SimTime>],
        island: &[DeviceId],
        chunk_bytes: u64,
        lane: usize,
        name: &str,
        combine: bool,
    ) {
        let m = island.len();
        if m <= 1 {
            return;
        }
        if combine {
            let mut r = 1;
            while r < m {
                for i in (0..m).step_by(2 * r) {
                    let s = i + r;
                    if s >= m {
                        continue;
                    }
                    let (src, dst) = (island[s].0, island[i].0);
                    self.tree_send(
                        q,
                        ready,
                        src,
                        dst,
                        chunk_bytes,
                        lane,
                        name,
                        "intra-up",
                        true,
                    );
                }
                r *= 2;
            }
        } else {
            let mut r = 1;
            while r < m {
                r *= 2;
            }
            while r > 1 {
                r /= 2;
                for i in (0..m).step_by(2 * r) {
                    let d = i + r;
                    if d >= m {
                        continue;
                    }
                    let (src, dst) = (island[i].0, island[d].0);
                    let dir = "intra-down";
                    self.tree_send(q, ready, src, dst, chunk_bytes, lane, name, dir, false);
                }
            }
        }
    }

    /// Host-staged schedule: every device copies its payload to the host,
    /// then copies the combined result back. All copies share the host root
    /// complex, so concurrent ones serialize (with arbitration penalties) —
    /// exactly the naive baseline the peer algorithms exist to beat.
    fn host_staged(
        &self,
        q: &mut QueueSim,
        kind: CollectiveKind,
        bytes: u64,
        earliest: &[SimTime],
        lane: usize,
        name: &str,
    ) -> Vec<SimTime> {
        let n = self.topo.num_devices();
        let shard = bytes.div_ceil(n as u64);
        let res = self.topo.host_resources().to_vec();
        let (up_bytes, down_bytes) = match kind {
            CollectiveKind::AllReduce => (bytes, bytes),
            CollectiveKind::ReduceScatter => (bytes, shard),
            CollectiveKind::AllGather => (shard, bytes),
            CollectiveKind::Broadcast => (0, bytes),
        };
        let mut host_done = SimTime::ZERO;
        if kind == CollectiveKind::Broadcast {
            let dur = self.topo.host_transfer_time(bytes);
            let label = format!("{name}:d2h:0");
            let (_, end) = self.send_chunk(
                q,
                self.stream(0, lane),
                earliest[0],
                dur,
                &res,
                bytes,
                0,
                &label,
            );
            host_done = end;
        } else {
            let dur = self.topo.host_transfer_time(up_bytes);
            for d in 0..n {
                let label = format!("{name}:d2h:{d}");
                let (_, end) = self.send_chunk(
                    q,
                    self.stream(d, lane),
                    earliest[d],
                    dur,
                    &res,
                    up_bytes,
                    d,
                    &label,
                );
                host_done = host_done.max(end);
            }
        }
        let dur = self.topo.host_transfer_time(down_bytes);
        let mut done = vec![SimTime::ZERO; n];
        for d in 0..n {
            if kind == CollectiveKind::Broadcast && d == 0 {
                done[d] = host_done.max(earliest[d]);
                continue;
            }
            let label = format!("{name}:h2d:{d}");
            let (_, end) = self.send_chunk(
                q,
                self.stream(d, lane),
                host_done,
                dur,
                &res,
                down_bytes,
                d,
                &label,
            );
            done[d] = end;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zeros(n: usize) -> Vec<SimTime> {
        vec![SimTime::ZERO; n]
    }

    fn run(
        topo: Topology,
        alg: Algorithm,
        kind: CollectiveKind,
        bytes: u64,
    ) -> (CollectiveTiming, QueueSim) {
        let n = topo.num_devices();
        let mut q = QueueSim::new(n, 1);
        let engine = CollectiveEngine::with_config(
            topo,
            EngineConfig {
                algorithm: Some(alg),
                ..EngineConfig::default()
            },
        );
        let t = engine.schedule(&mut q, kind, bytes, &zeros(n), 0, "ar");
        (t, q)
    }

    #[test]
    fn ring_beats_host_staged_on_8_dev_nvlink() {
        for bytes in [8u64, 1 << 10, 1 << 20, 64 << 20] {
            let (ring, _) = run(
                Topology::nvlink_all_to_all(8, 1555.0),
                Algorithm::Ring,
                CollectiveKind::AllReduce,
                bytes,
            );
            let (host, _) = run(
                Topology::nvlink_all_to_all(8, 1555.0),
                Algorithm::HostStaged,
                CollectiveKind::AllReduce,
                bytes,
            );
            assert!(
                ring.makespan() < host.makespan(),
                "{bytes} B: ring {} !< host-staged {}",
                ring.makespan(),
                host.makespan()
            );
        }
    }

    #[test]
    fn tree_beats_ring_for_tiny_nvlink_payloads() {
        let (tree, _) = run(
            Topology::nvlink_all_to_all(8, 1555.0),
            Algorithm::Tree,
            CollectiveKind::AllReduce,
            8,
        );
        let (ring, _) = run(
            Topology::nvlink_all_to_all(8, 1555.0),
            Algorithm::Ring,
            CollectiveKind::AllReduce,
            8,
        );
        assert!(tree.makespan() < ring.makespan());
    }

    #[test]
    fn ring_all_reduce_has_expected_step_count() {
        // 4 devices, tiny payload, no chunk split: 2·3 steps of ≥ latency
        // each, overlapped across devices ⇒ makespan ≈ 6 × 9.5 µs.
        let (t, _) = run(
            Topology::nvlink_all_to_all(4, 1555.0),
            Algorithm::Ring,
            CollectiveKind::AllReduce,
            8,
        );
        let us = t.makespan().as_us();
        assert!((us - 6.0 * 9.5).abs() < 1.0, "got {us}");
    }

    #[test]
    fn pipelining_helps_large_chained_broadcasts() {
        // A store-and-forward chain pays the full payload per hop; chunking
        // lets hop `h+1` forward chunk 0 while chunk 1 is still arriving.
        let topo = Topology::nvlink_all_to_all(4, 1555.0);
        let bytes = 64 << 20;
        let (piped, _) = run(
            topo.clone(),
            Algorithm::Ring,
            CollectiveKind::Broadcast,
            bytes,
        );
        let engine = CollectiveEngine::with_config(
            topo,
            EngineConfig {
                algorithm: Some(Algorithm::Ring),
                max_chunks: 1,
                ..EngineConfig::default()
            },
        );
        let mut q = QueueSim::new(4, 1);
        let whole = engine.schedule(&mut q, CollectiveKind::Broadcast, bytes, &zeros(4), 0, "bc");
        assert!(
            piped.makespan() < whole.makespan(),
            "chunked {} !< unchunked {}",
            piped.makespan(),
            whole.makespan()
        );
    }

    #[test]
    fn pcie_steps_serialize_through_root_complex() {
        // On the PCIe box every ring step shares the host root complex; the
        // contention counters must show it.
        let (_, q) = run(
            Topology::pcie_host_staged(4, 870.0),
            Algorithm::Ring,
            CollectiveKind::AllReduce,
            1 << 20,
        );
        assert!(q.link_contention_events(0) > 0);
        assert!(q.link_busy_time(0) > SimTime::ZERO);
    }

    #[test]
    fn nvlink_ring_never_contends() {
        let topo = Topology::nvlink_all_to_all(4, 1555.0);
        let nres = topo.num_link_resources();
        let (_, q) = run(topo, Algorithm::Ring, CollectiveKind::AllReduce, 1 << 20);
        for r in 0..nres {
            assert_eq!(q.link_contention_events(r), 0, "resource {r} contended");
        }
    }

    #[test]
    fn respects_earliest_times() {
        let topo = Topology::nvlink_all_to_all(2, 1555.0);
        let engine = CollectiveEngine::new(topo);
        let mut q = QueueSim::new(2, 1);
        let late = SimTime::from_us(500.0);
        let t = engine.schedule(
            &mut q,
            CollectiveKind::AllReduce,
            8,
            &[SimTime::ZERO, late],
            0,
            "ar",
        );
        assert!(t.makespan() > late, "cannot finish before the last input");
    }

    #[test]
    fn single_device_is_free() {
        let topo = Topology::nvlink_all_to_all(1, 1555.0);
        let engine = CollectiveEngine::new(topo);
        let mut q = QueueSim::new(1, 1);
        let t0 = SimTime::from_us(42.0);
        let t = engine.schedule(&mut q, CollectiveKind::AllReduce, 1 << 20, &[t0], 0, "ar");
        assert_eq!(t.done, vec![t0]);
        assert_eq!(t.busy, SimTime::ZERO);
    }

    #[test]
    fn all_kinds_schedule_on_all_algorithms() {
        for alg in Algorithm::ALL {
            for kind in [
                CollectiveKind::AllReduce,
                CollectiveKind::ReduceScatter,
                CollectiveKind::AllGather,
                CollectiveKind::Broadcast,
            ] {
                let (t, _) = run(Topology::nvlink_all_to_all(3, 1555.0), alg, kind, 4 << 10);
                assert!(t.makespan() > SimTime::ZERO, "{alg}/{kind}");
                assert!(t.busy > SimTime::ZERO, "{alg}/{kind}");
                assert_eq!(t.done.len(), 3);
            }
        }
    }

    #[test]
    fn hierarchical_beats_flat_ring_on_two_islands() {
        // 2 islands × 2 devices, 16 MiB: the flat ring pays the slow PCIe
        // cross-links on 2 of its 4 edges every step; hierarchical crosses
        // them exactly twice.
        let topo = Topology::nvlink_islands(&[2, 2], 1555.0);
        let bytes = 16 << 20;
        let (hier, hq) = run(
            topo.clone(),
            Algorithm::Hierarchical,
            CollectiveKind::AllReduce,
            bytes,
        );
        let (ring, rq) = run(topo, Algorithm::Ring, CollectiveKind::AllReduce, bytes);
        assert!(
            hier.makespan().as_us() < 0.8 * ring.makespan().as_us(),
            "hierarchical {} !< 0.8 × ring {}",
            hier.makespan(),
            ring.makespan()
        );
        let hier_slow = hq.counters_snapshot().slow_link_bytes;
        let ring_slow = rq.counters_snapshot().slow_link_bytes;
        assert!(
            hier_slow < ring_slow,
            "slow-link bytes {hier_slow} !< {ring_slow}"
        );
    }

    #[test]
    fn hierarchical_handles_every_kind_on_uneven_islands() {
        for sizes in [&[3usize, 1][..], &[2, 1, 1], &[1, 4], &[2, 3, 2]] {
            for kind in [
                CollectiveKind::AllReduce,
                CollectiveKind::ReduceScatter,
                CollectiveKind::AllGather,
                CollectiveKind::Broadcast,
            ] {
                let topo = Topology::nvlink_islands(sizes, 1555.0);
                let n = topo.num_devices();
                let (t, _) = run(topo, Algorithm::Hierarchical, kind, 4 << 10);
                assert!(t.makespan() > SimTime::ZERO, "{sizes:?}/{kind}");
                assert_eq!(t.done.len(), n);
            }
        }
    }

    #[test]
    fn hierarchical_on_one_island_matches_tree() {
        let topo = Topology::nvlink_all_to_all(4, 1555.0);
        let (hier, _) = run(
            topo.clone(),
            Algorithm::Hierarchical,
            CollectiveKind::AllReduce,
            1 << 20,
        );
        let (tree, _) = run(topo, Algorithm::Tree, CollectiveKind::AllReduce, 1 << 20);
        assert_eq!(hier.makespan(), tree.makespan());
    }

    #[test]
    fn auto_selection_picks_hierarchical_on_mixed_topology() {
        let engine = CollectiveEngine::new(Topology::nvlink_islands(&[2, 2], 1555.0));
        assert_eq!(
            engine.select(CollectiveKind::AllReduce, 1 << 20),
            Algorithm::Hierarchical
        );
        let mut q = QueueSim::new(4, 1);
        let t = engine.schedule(
            &mut q,
            CollectiveKind::AllReduce,
            1 << 20,
            &zeros(4),
            0,
            "ar",
        );
        assert_eq!(t.algorithm, Algorithm::Hierarchical);
    }

    #[test]
    fn link_faults_charge_retry_at_chunk_granularity() {
        use neon_sys::{FaultInjector, FaultPlan, RetryPolicy};
        let topo = Topology::nvlink_all_to_all(4, 1555.0);
        let engine = CollectiveEngine::with_config(
            topo,
            EngineConfig {
                algorithm: Some(Algorithm::Ring),
                ..EngineConfig::default()
            },
        );
        let bytes = 8 << 20;
        let mut clean_q = QueueSim::new(4, 1);
        let clean = engine.schedule(
            &mut clean_q,
            CollectiveKind::AllReduce,
            bytes,
            &zeros(4),
            0,
            "ar",
        );
        // A recovered transient on the second chunk sent toward rank 2.
        let mut q = QueueSim::new(4, 1);
        let plan = FaultPlan::none().with_link_fault(0, DeviceId(2), 1, 1);
        let inj = FaultInjector::new(plan, RetryPolicy::default(), 4);
        inj.begin_iteration(0).unwrap();
        q.set_fault_injector(Some(inj));
        let faulted = engine.schedule(&mut q, CollectiveKind::AllReduce, bytes, &zeros(4), 0, "ar");
        assert!(
            faulted.makespan() > clean.makespan(),
            "retry must cost virtual time: {} !> {}",
            faulted.makespan(),
            clean.makespan()
        );
        let stats = q.fault_injector().unwrap().stats();
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.escaped, 0);
    }

    #[test]
    fn escaped_link_fault_marks_the_site_and_skips_the_wire() {
        use neon_sys::{FaultInjector, FaultPlan, RetryPolicy};
        let topo = Topology::nvlink_all_to_all(2, 1555.0);
        let nres = topo.num_link_resources();
        let engine = CollectiveEngine::with_config(
            topo,
            EngineConfig {
                algorithm: Some(Algorithm::Tree),
                ..EngineConfig::default()
            },
        );
        let mut q = QueueSim::new(2, 1);
        let plan = FaultPlan::none().with_link_fault(0, DeviceId(0), 0, 99);
        let inj = FaultInjector::new(plan, RetryPolicy::default(), 2);
        inj.begin_iteration(0).unwrap();
        q.set_fault_injector(Some(inj));
        engine.schedule(&mut q, CollectiveKind::AllReduce, 8, &zeros(2), 0, "ar");
        let inj = q.fault_injector().unwrap();
        let site = inj.escape_site().expect("escape recorded");
        assert_eq!(site.kind, FaultSiteKind::Link);
        assert_eq!(site.device, DeviceId(0));
        assert_eq!(inj.stats().escaped, 1);
        // The first transfer (toward the root, rank 0) escaped, so the
        // wire it would have used stays idle; later sends observe Clean.
        assert!((0..nres).any(|r| q.link_busy_time(r) == SimTime::ZERO));
    }

    #[test]
    fn clean_injector_is_bit_identical_to_no_injector() {
        use neon_sys::{FaultInjector, FaultPlan, RetryPolicy};
        for alg in Algorithm::ALL {
            let topo = Topology::nvlink_islands(&[2, 2], 1555.0);
            let engine = CollectiveEngine::with_config(
                topo,
                EngineConfig {
                    algorithm: Some(alg),
                    ..EngineConfig::default()
                },
            );
            let mut bare = QueueSim::new(4, 1);
            let a = engine.schedule(
                &mut bare,
                CollectiveKind::AllReduce,
                3 << 20,
                &zeros(4),
                0,
                "ar",
            );
            let mut faulty = QueueSim::new(4, 1);
            let inj = FaultInjector::new(FaultPlan::none(), RetryPolicy::default(), 4);
            inj.begin_iteration(0).unwrap();
            faulty.set_fault_injector(Some(inj));
            let b = engine.schedule(
                &mut faulty,
                CollectiveKind::AllReduce,
                3 << 20,
                &zeros(4),
                0,
                "ar",
            );
            assert_eq!(a, b, "{alg}");
        }
    }

    #[test]
    fn auto_selection_matches_choose() {
        let topo = Topology::nvlink_all_to_all(8, 1555.0);
        let engine = CollectiveEngine::new(topo.clone());
        for bytes in [8u64, 1 << 16, 64 << 20] {
            assert_eq!(
                engine.select(CollectiveKind::AllReduce, bytes),
                crate::algorithm::choose(CollectiveKind::AllReduce, bytes, &topo)
            );
        }
    }
}
