//! # neon-comm — collective communication over simulated devices
//!
//! NCCL-style collective primitives for the Neon stack: `all_reduce`,
//! `reduce_scatter`, `all_gather` and `broadcast`, each available as
//!
//! * a **functional** operation on per-device host buffers
//!   ([`buffers`]) that always combines in canonical rank order, so the
//!   result is bit-identical no matter which algorithm the timing layer
//!   picks; and
//! * a **timing schedule** on a [`QueueSim`] virtual clock
//!   ([`engine::CollectiveEngine`]) implementing four algorithms —
//!   host-staged (the naive baseline: every partial staged through the
//!   host), **ring** (bandwidth-optimal, `2(n−1)` shard-sized steps with
//!   chunk-level pipelining), **binomial tree**
//!   (latency-optimal, `2⌈log₂ n⌉` rounds) and **hierarchical**
//!   (topology-aware: reduce inside each NVLink island, exchange one
//!   representative per island across the slow cross-island links,
//!   broadcast back inside) — with automatic selection driven by the
//!   topology's link class, island structure and the message size
//!   ([`algorithm::choose`]).
//!
//! Transfers are enqueued through [`QueueSim::enqueue_transfer`], so they
//! occupy the physical link resources named by the [`Topology`]: collective
//! steps on a PCIe box contend for the host root complex and serialize,
//! while NVLink rings run fully overlapped on dedicated per-pair links.
//!
//! [`QueueSim`]: neon_sys::QueueSim
//! [`QueueSim::enqueue_transfer`]: neon_sys::QueueSim::enqueue_transfer
//! [`Topology`]: neon_sys::Topology

// Collective algorithms are written over explicit device ranks; the loop
// index *is* the rank identity (src/dst/round partner), so iterator-style
// rewrites obscure the communication pattern.
#![allow(clippy::needless_range_loop)]

pub mod algorithm;
pub mod buffers;
pub mod engine;

pub use algorithm::{
    choose, choose_flat, estimate_hierarchical_us, estimate_us, Algorithm, CollectiveKind,
};
pub use buffers::{all_gather, all_reduce, broadcast, reduce_scatter};
pub use engine::{CollectiveEngine, CollectiveTiming, EngineConfig};
