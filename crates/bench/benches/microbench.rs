//! Criterion microbenchmarks of the framework's hot paths: container
//! construction (loader dry-run), dependency-graph building, the
//! multi-GPU + OCC transforms, scheduling, halo execution, and functional
//! application steps (LBM, CG) on small real grids.

use criterion::{criterion_group, criterion_main, Criterion};

use neon_apps::lbm::{LbmParams, LidDrivenCavity};
use neon_apps::PoissonSolver;
use neon_core::{
    apply_occ, build_dependency_graph, build_schedule, to_multigpu_graph, OccLevel, Skeleton,
    SkeletonOptions,
};
use neon_domain::{
    ops, Cell, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike,
    MemLayout, ScalarSet, Stencil, StorageMode,
};
use neon_sys::Backend;

fn fixture() -> (
    Backend,
    DenseGrid,
    Field<f64, DenseGrid>,
    Field<f64, DenseGrid>,
) {
    let b = Backend::dgx_a100(4);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::new(16, 16, 32), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
    (b, g, x, y)
}

fn pipeline(g: &DenseGrid, x: &Field<f64, DenseGrid>, y: &Field<f64, DenseGrid>) -> Vec<Container> {
    let dot = ScalarSet::<f64>::new(g.num_partitions(), "dot", 0.0, |a, b| a + b);
    let sten = {
        let (xc, yc) = (x.clone(), y.clone());
        Container::compute("stn", g.as_space(), move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |c: Cell| yv.set(c, 0, xv.ngh(c, 0, 0)))
        })
    };
    vec![ops::set_value(g, x, 1.0), sten, ops::dot(g, y, y, &dot)]
}

fn bench_container_construction(c: &mut Criterion) {
    let (_, g, x, y) = fixture();
    c.bench_function("container_construction_dry_run", |bench| {
        bench.iter(|| std::hint::black_box(ops::axpy_const(&g, 2.0, &x, &y)))
    });
}

fn bench_graph_pipeline(c: &mut Criterion) {
    let (_, g, x, y) = fixture();
    let containers = pipeline(&g, &x, &y);
    c.bench_function("dependency_graph_build", |bench| {
        bench.iter(|| std::hint::black_box(build_dependency_graph(&containers)))
    });
    let dep = build_dependency_graph(&containers);
    c.bench_function("multigpu_transform", |bench| {
        bench.iter(|| std::hint::black_box(to_multigpu_graph(&dep, 4)))
    });
    let mg = to_multigpu_graph(&dep, 4);
    c.bench_function("occ_two_way_transform", |bench| {
        bench.iter(|| std::hint::black_box(apply_occ(&mg, OccLevel::TwoWayExtended)))
    });
    let occ = apply_occ(&mg, OccLevel::TwoWayExtended);
    c.bench_function("schedule_build", |bench| {
        bench.iter(|| std::hint::black_box(build_schedule(&occ, 8)))
    });
}

fn bench_skeleton_replay(c: &mut Criterion) {
    let (b, g, x, y) = fixture();
    let mut sk = Skeleton::sequence(
        &b,
        "replay",
        pipeline(&g, &x, &y),
        SkeletonOptions::with_occ(OccLevel::TwoWayExtended),
    );
    c.bench_function("skeleton_run_functional_16x16x32_4gpu", |bench| {
        bench.iter(|| std::hint::black_box(sk.run()))
    });
}

fn bench_halo_exchange(c: &mut Criterion) {
    let (_, g, x, _) = fixture();
    let big = Field::<f64, _>::new(&g, "wide", 19, 0.0, MemLayout::SoA).unwrap();
    c.bench_function("halo_execute_scalar", |bench| {
        bench.iter(|| x.update_halos())
    });
    c.bench_function("halo_execute_19comp_soa", |bench| {
        bench.iter(|| big.update_halos())
    });
}

fn bench_lbm_step(c: &mut Criterion) {
    let b = Backend::dgx_a100(2);
    let st = Stencil::d3q19();
    let g = DenseGrid::new(&b, Dim3::cube(16), &[&st], StorageMode::Real).unwrap();
    let mut app = LidDrivenCavity::new(&g, LbmParams::default(), OccLevel::Standard).unwrap();
    app.init();
    c.bench_function("lbm_functional_step_16c_2gpu", |bench| {
        bench.iter(|| std::hint::black_box(app.step(1)))
    });
}

fn bench_cg_iteration(c: &mut Criterion) {
    let b = Backend::dgx_a100(2);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::cube(16), &[&st], StorageMode::Real).unwrap();
    let mut solver = PoissonSolver::new(&g, OccLevel::TwoWayExtended).unwrap();
    solver.set_rhs(|x, y, z| ((x + y + z) % 5) as f64);
    c.bench_function("poisson_cg_functional_iter_16c_2gpu", |bench| {
        bench.iter(|| std::hint::black_box(solver.solve_iters(1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_container_construction, bench_graph_pipeline,
              bench_skeleton_replay, bench_halo_exchange, bench_lbm_step,
              bench_cg_iteration
}
criterion_main!(benches);
