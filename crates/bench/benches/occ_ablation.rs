//! Criterion benchmark of the orchestration cost per OCC level: how much
//! host-side work (graph transforms + schedule replay on the virtual
//! clock) each optimization level adds. The *simulated* performance of
//! each level is reported by the `repro_*` binaries; this measures the
//! real overhead of driving the richer graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use neon_core::{OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    Cell, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike,
    MemLayout, ScalarSet, Stencil, StorageMode,
};
use neon_sys::Backend;

fn build_skeleton(occ: OccLevel) -> Skeleton {
    let b = Backend::dgx_a100(8);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::new(64, 64, 64), &[&st], StorageMode::Virtual).unwrap();
    let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
    let dot = ScalarSet::<f64>::new(8, "dot", 0.0, |a, b| a + b);
    let map = {
        let xc = x.clone();
        Container::compute("map", g.as_space(), move |ldr| {
            let xv = ldr.read_write(&xc);
            Box::new(move |c: Cell| xv.set(c, 0, xv.at(c, 0)))
        })
    };
    let sten = {
        let (xc, yc) = (x.clone(), y.clone());
        Container::compute("stn", g.as_space(), move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |c: Cell| yv.set(c, 0, xv.ngh(c, 0, 0)))
        })
    };
    let red = neon_domain::ops::dot(&g, &y, &y, &dot);
    Skeleton::sequence(
        &b,
        "abl",
        vec![map, sten, red],
        SkeletonOptions::with_occ(occ),
    )
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("skeleton_compile");
    for occ in OccLevel::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(occ), &occ, |bench, &occ| {
            bench.iter(|| std::hint::black_box(build_skeleton(occ)))
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("timing_replay");
    for occ in OccLevel::ALL {
        let mut sk = build_skeleton(occ);
        group.bench_with_input(BenchmarkId::from_parameter(occ), &occ, |bench, _| {
            bench.iter(|| std::hint::black_box(sk.run()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compile, bench_replay
}
criterion_main!(benches);
