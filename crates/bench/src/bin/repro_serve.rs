//! Serving-layer benchmark: a 4-device fleet multiplexed across three
//! weighted tenants submitting a mixed stream of Poisson-CG and LBM jobs.
//!
//! Offered load is swept from 0.5× to 4× of fleet capacity (capacity is
//! measured from solo runs of the job mix). At every load the same
//! arrival stream is served twice:
//!
//! * `wfq`  — weighted fair queueing with iteration-boundary preemption
//!   and space sharing over device subsets (the serving layer's policy);
//! * `fifo` — the naive baseline: one job at a time, whole fleet, run to
//!   completion in arrival order.
//!
//! Recorded per (load, policy): completed jobs per virtual second, p50 /
//! p99 job latency, Jain's fairness index over weight-normalized tenant
//! service, sheds, plan-cache hits, and the host wall-clock fraction
//! spent in scheduling decisions. A separate 2×-load scenario kills a
//! device mid-run and must still complete every admitted job.
//!
//! Three properties gate the run (exit non-zero on violation):
//!
//! 1. every completed job is **bit-identical** to a solo replay of the
//!    same spec (including device-loss survivors, via their recorded
//!    eviction events);
//! 2. at 2× load, wfq throughput ≥ 1.3× fifo throughput;
//! 3. at 2× load, Jain's index over weighted tenants ≥ 0.9.
//!
//! `--smoke` shrinks the jobs and skips the results file (CI hook).
//! Output: tables on stdout, JSON at `results/BENCH_serve.json`.

use std::fmt::Write as _;

use neon_apps::JobSpec;
use neon_bench::render_table;
use neon_core::{OccLevel, SkeletonOptions};
use neon_serve::{
    solo_run_bits, DeviceLoss, JobRequest, SchedPolicy, ServeConfig, ServeReport, Server,
    TenantSpec,
};
use neon_sys::{Backend, DeviceId};

const NDEV: usize = 4;
const LOADS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

fn options() -> SkeletonOptions {
    SkeletonOptions::with_occ(OccLevel::Standard)
}

/// Deterministic splitmix-style generator: the arrival streams must be
/// identical run-to-run and policy-to-policy.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x243F_6A88_85A3_08D3)
    }

    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z ^= z >> 27;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential inter-arrival with the given mean (Poisson process).
    fn exp(&mut self, mean: f64) -> f64 {
        let u = self.next_f64().clamp(1e-12, 1.0 - 1e-12);
        -mean * (1.0 - u).ln()
    }
}

/// The job mix every tenant cycles through: small 1-device CG, larger
/// 2-device CG, 1-device LBM.
fn job_mix(smoke: bool) -> Vec<(JobSpec, usize)> {
    let (d1, i1, d2, i2, d3, i3) = if smoke {
        (8, 8, 10, 6, 6, 8)
    } else {
        (12, 24, 14, 16, 8, 16)
    };
    vec![
        (
            JobSpec::Poisson {
                dim: d1,
                iters: i1,
                rhs_seed: 0,
            },
            1,
        ),
        (
            JobSpec::Poisson {
                dim: d2,
                iters: i2,
                rhs_seed: 0,
            },
            2,
        ),
        (JobSpec::Lbm { dim: d3, iters: i3 }, 1),
    ]
}

fn with_seed(spec: JobSpec, seed: u64) -> JobSpec {
    match spec {
        JobSpec::Poisson { dim, iters, .. } => JobSpec::Poisson {
            dim,
            iters,
            rhs_seed: seed,
        },
        lbm => lbm,
    }
}

/// Device-time demand (makespan × subset size, µs) of one solo run.
fn solo_demand_us(fleet: &Backend, spec: JobSpec, ndev: usize) -> f64 {
    let subset: Vec<DeviceId> = (0..ndev).map(DeviceId).collect();
    let backend = fleet.with_devices(&subset).expect("subset");
    let mut job = spec.build(&backend, options()).expect("solo job");
    let report = job.advance(job.total());
    report.makespan.as_us() * ndev as f64
}

/// The same Poisson arrival stream every policy serves. Each tenant's
/// offered load is proportional to its weight (a tenant buys capacity in
/// proportion to its share), scaled so the aggregate is `load` × fleet
/// capacity — at 2× overall load every tenant offers 2× its own
/// entitlement, the regime where weighted fairness is measurable.
fn gen_requests(
    mix: &[(JobSpec, usize)],
    mean_demand_us: f64,
    load: f64,
    base_jobs: usize,
    weights: &[f64],
) -> Vec<JobRequest> {
    let wsum: f64 = weights.iter().sum();
    let mut reqs = Vec::new();
    for (t, &w) in weights.iter().enumerate() {
        // jobs/µs for this tenant: its weight-share of `load` × capacity.
        let rate = load * NDEV as f64 * (w / wsum) / mean_demand_us;
        // Job count scales the same way, so every tenant's arrival window
        // spans the same virtual interval regardless of weight.
        let n =
            ((base_jobs as f64 * load * weights.len() as f64 * w / wsum).round() as usize).max(2);
        let mut rng = Rng::new(0x5EED + 1009 * t as u64 + (load * 16.0) as u64);
        let mut at = 0.0f64;
        for j in 0..n {
            at += rng.exp(1.0 / rate);
            let (spec, ndev) = mix[(t + j) % mix.len()];
            let seed = ((t as u64) << 32) | j as u64;
            reqs.push(JobRequest {
                tenant: t,
                spec: with_seed(spec, seed),
                ndev,
                arrival_us: at,
            });
        }
    }
    reqs
}

/// Every completed job must fingerprint-match a solo replay (with the
/// same forced-migration history, if a device died under it).
fn verify_bits(fleet: &Backend, report: &ServeReport, label: &str) -> bool {
    let mut ok = true;
    for o in report.outcomes.iter().filter(|o| o.completed) {
        let solo = solo_run_bits(
            fleet,
            o.spec,
            o.first_ndev.expect("completed jobs ran"),
            options(),
            &o.evictions,
        )
        .expect("solo replay");
        if o.result_bits != Some(solo) {
            eprintln!("FAIL[{label}]: {:?} diverges from its solo run", o.spec);
            ok = false;
        }
    }
    ok
}

struct LoadRow {
    load: f64,
    policy: &'static str,
    submitted: usize,
    completed: usize,
    shed: u64,
    jobs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    jain: f64,
    sched_frac: f64,
    cache_hits: u64,
    cache_misses: u64,
}

fn row_of(load: f64, policy: &'static str, report: &ServeReport) -> LoadRow {
    let (p50, p99) = report.latency_percentiles_us();
    LoadRow {
        load,
        policy,
        submitted: report.outcomes.len(),
        completed: report.outcomes.iter().filter(|o| o.completed).count(),
        shed: report.shed,
        jobs_per_sec: report.jobs_per_sec(),
        p50_us: p50,
        p99_us: p99,
        jain: report.jain_fairness(),
        sched_frac: if report.total_wall_us > 0.0 {
            report.sched_wall_us / report.total_wall_us
        } else {
            0.0
        },
        cache_hits: report.cache_hits,
        cache_misses: report.cache_misses,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fleet = Backend::dgx_a100(NDEV);
    let tenants = || {
        vec![
            TenantSpec::new("bronze", 1.0),
            TenantSpec::new("silver", 2.0),
            TenantSpec::new("gold", 4.0),
        ]
    };
    let ntenants = 3;
    let mix = job_mix(smoke);
    let config = |policy: SchedPolicy, loss: Option<DeviceLoss>| ServeConfig {
        queue_capacity: 3,
        quantum_iters: 4,
        policy,
        device_loss: loss,
        link_fault: None,
    };

    // Capacity calibration: mean device-time demand of the mix, solo.
    let mean_demand_us = mix
        .iter()
        .map(|&(spec, ndev)| solo_demand_us(&fleet, spec, ndev))
        .sum::<f64>()
        / mix.len() as f64;
    println!(
        "== repro_serve: {NDEV}-device fleet, {ntenants} tenants (weights 1/2/4), \
         mean job demand {mean_demand_us:.0} device-us, host_cores={host_cores} ==\n"
    );

    let base = if smoke { 4 } else { 6 };
    let mut rows: Vec<LoadRow> = Vec::new();
    let mut bits_ok = true;
    let mut wfq_2x_jps = 0.0;
    let mut fifo_2x_jps = 0.0;
    let mut jain_2x = 0.0;
    let mut requests_2x = Vec::new();
    let mut makespan_2x = 0.0;

    let weights = [1.0, 2.0, 4.0];
    for &load in &LOADS {
        let requests = gen_requests(&mix, mean_demand_us, load, base, &weights);

        let wfq = Server::new(&fleet, tenants(), config(SchedPolicy::WeightedFair, None))
            .run(requests.clone());
        bits_ok &= verify_bits(&fleet, &wfq, "wfq");
        let fifo = Server::new(&fleet, tenants(), config(SchedPolicy::FifoExclusive, None))
            .run(requests.clone());
        bits_ok &= verify_bits(&fleet, &fifo, "fifo");

        if (load - 2.0).abs() < 1e-9 {
            wfq_2x_jps = wfq.jobs_per_sec();
            fifo_2x_jps = fifo.jobs_per_sec();
            jain_2x = wfq.jain_fairness();
            requests_2x = requests;
            makespan_2x = wfq.makespan.as_us();

            // Showcase the per-tenant accounting at the contended point.
            let mut acct = Vec::new();
            for t in &wfq.tenants {
                acct.push(vec![
                    t.name.clone(),
                    format!("{:.0}", t.weight),
                    format!("{}", t.jobs_completed),
                    format!("{}", t.jobs_shed),
                    format!("{}", t.iterations),
                    format!("{}", t.launches),
                    format!("{:.1}", t.bytes_moved as f64 / 1e6),
                    format!("{:.0}", t.device_busy_us),
                    format!("{:.0}", t.link_busy_us),
                    format!("{:.0}", t.queue_wait_us),
                ]);
            }
            println!("per-tenant accounting, wfq at 2.0x load:");
            print!(
                "{}",
                render_table(
                    &[
                        "Tenant",
                        "Weight",
                        "Done",
                        "Shed",
                        "Iters",
                        "Launches",
                        "MB moved",
                        "Busy (us)",
                        "Link (us)",
                        "Waited (us)"
                    ],
                    &acct
                )
            );
            println!();
        }

        rows.push(row_of(load, "wfq", &wfq));
        rows.push(row_of(load, "fifo", &fifo));
    }

    // Device-loss scenario: re-serve the 2× stream, device 1 dies ~30%
    // into the (previously measured) wfq makespan. Every admitted job
    // must still complete, bit-identical to an eviction-replaying solo.
    let loss = DeviceLoss {
        at_us: makespan_2x * 0.3,
        device: 1,
    };
    let lossy = Server::new(
        &fleet,
        tenants(),
        config(SchedPolicy::WeightedFair, Some(loss)),
    )
    .run(requests_2x);
    bits_ok &= verify_bits(&fleet, &lossy, "wfq+loss");
    let loss_evictions: usize = lossy.outcomes.iter().map(|o| o.evictions.len()).sum();
    let loss_all_admitted_done = lossy.outcomes.iter().all(|o| o.completed || !o.admitted);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}x", r.load),
                r.policy.to_string(),
                format!("{}", r.submitted),
                format!("{}", r.completed),
                format!("{}", r.shed),
                format!("{:.1}", r.jobs_per_sec),
                format!("{:.0}", r.p50_us),
                format!("{:.0}", r.p99_us),
                format!("{:.3}", r.jain),
                format!("{:.2}%", r.sched_frac * 100.0),
                format!("{}/{}", r.cache_hits, r.cache_misses),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "Load",
                "Policy",
                "Jobs",
                "Done",
                "Shed",
                "Jobs/s",
                "p50 (us)",
                "p99 (us)",
                "Jain",
                "Sched",
                "Cache h/m"
            ],
            &table
        )
    );
    println!(
        "\ndevice-loss at 2.0x: {} evictions, all admitted jobs completed: {}",
        loss_evictions, loss_all_admitted_done
    );

    // Gates.
    let speedup_2x = if fifo_2x_jps > 0.0 {
        wfq_2x_jps / fifo_2x_jps
    } else {
        0.0
    };
    let mut failed = false;
    if !bits_ok {
        eprintln!("FAIL: a multiplexed job diverged from its solo run");
        failed = true;
    }
    if speedup_2x < 1.3 {
        eprintln!("FAIL: wfq/fifo throughput at 2x load = {speedup_2x:.2} (< 1.3)");
        failed = true;
    }
    if jain_2x < 0.9 {
        eprintln!("FAIL: Jain's index at 2x load = {jain_2x:.3} (< 0.9)");
        failed = true;
    }
    if loss_evictions == 0 || !loss_all_admitted_done {
        eprintln!("FAIL: device-loss scenario did not evict+complete as required");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "gates: bit-identical; wfq/fifo at 2x = {speedup_2x:.2} (>= 1.3); \
         Jain at 2x = {jain_2x:.3} (>= 0.9)"
    );

    if smoke {
        return; // CI gate only, no results file
    }

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"bench\":\"repro_serve\",\"devices\":{NDEV},\"host_cores\":{host_cores},\
         \"tenants\":[{{\"name\":\"bronze\",\"weight\":1}},{{\"name\":\"silver\",\"weight\":2}},\
         {{\"name\":\"gold\",\"weight\":4}}],\"mean_job_demand_us\":{mean_demand_us:.3},\
         \"queue_capacity\":3,\"quantum_iters\":4,\"loads\":["
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"load\":{},\"policy\":\"{}\",\"submitted\":{},\"completed\":{},\
             \"shed\":{},\"jobs_per_sec\":{:.3},\"p50_us\":{:.3},\"p99_us\":{:.3},\
             \"jain\":{:.4},\"sched_frac\":{:.6},\"cache_hits\":{},\"cache_misses\":{}}}",
            if i == 0 { "" } else { "," },
            r.load,
            r.policy,
            r.submitted,
            r.completed,
            r.shed,
            r.jobs_per_sec,
            r.p50_us,
            r.p99_us,
            r.jain,
            r.sched_frac,
            r.cache_hits,
            r.cache_misses,
        );
    }
    let _ = write!(
        json,
        "],\"wfq_vs_fifo_at_2x\":{speedup_2x:.4},\"jain_at_2x\":{jain_2x:.4},\
         \"device_loss\":{{\"at_us\":{:.3},\"device\":1,\"evictions\":{loss_evictions},\
         \"all_admitted_completed\":{loss_all_admitted_done},\
         \"jobs_per_sec\":{:.3}}},\"bit_identical\":{bits_ok}}}",
        loss.at_us,
        lossy.jobs_per_sec(),
    );
    std::fs::create_dir_all("results").expect("results dir");
    let path = "results/BENCH_serve.json";
    std::fs::write(path, &json).expect("write results JSON");
    println!("wrote {path}");
}
