//! Reproduces **Fig. 9** of the paper: the matrix-free FEM linear-elastic
//! solver on dense vs element-sparse grids, across grid sizes and
//! sparsity ratios.
//!
//! The paper's findings: the element-sparse structure wins once the
//! sparsity ratio drops below ≈0.8; the dense grid wins (and uses less
//! memory) when the domain is fully dense — at 512³ with ratio 1.0 the
//! sparse structure runs out of device memory. We report the per-device
//! memory demand alongside the per-CG-iteration times, on the 8-GPU DGX
//! model and — for the memory-limited data point — on a single 32 GB
//! GV100 (the paper's second system).

use neon_bench::{fem_dense_iter_time, fem_sparse_iter_time, peak_device_demand, render_table};
use neon_core::OccLevel;
use neon_sys::Backend;

fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

fn sweep(backend_name: &str, mk_backend: impl Fn() -> Backend, sizes: &[usize]) {
    const ITERS: usize = 3;
    const OCC: OccLevel = OccLevel::Standard;
    println!("-- system: {backend_name} --");
    let mut rows = Vec::new();
    for &n in sizes {
        for ratio in [1.0, 0.2] {
            // Fresh backends per run so ledger peaks are per-configuration.
            let bd = mk_backend();
            let dense = fem_dense_iter_time(&bd, n, OCC, ITERS);
            let dense_mem = peak_device_demand(&bd);
            let bs = mk_backend();
            let sparse = fem_sparse_iter_time(&bs, n, ratio, OCC, ITERS);
            let sparse_mem = peak_device_demand(&bs);
            let fmt = |r: &neon_sys::Result<neon_sys::SimTime>| match r {
                Ok(t) => format!("{:.2} ms", t.as_ms()),
                Err(_) => "OOM".to_string(),
            };
            let ratio_str = match (&dense, &sparse) {
                (Ok(d), Ok(s)) => format!("{:.2}", d.as_us() / s.as_us()),
                _ => "-".to_string(),
            };
            rows.push(vec![
                format!("{n}^3"),
                format!("{ratio:.1}"),
                fmt(&dense),
                fmt(&sparse),
                ratio_str,
                format!("{:.1}", gib(dense_mem)),
                format!("{:.1}", gib(sparse_mem)),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &[
                "Grid",
                "sparsity",
                "dense t/iter",
                "sparse t/iter",
                "dense/sparse",
                "dense GiB/dev",
                "sparse GiB/dev",
            ],
            &rows
        )
    );
    println!();
}

fn main() {
    println!("== Fig. 9: FEM linear elasticity, dense vs element-sparse ==\n");
    sweep(
        "DGX A100, 8 GPUs (40 GB each)",
        || Backend::dgx_a100(8),
        &[128, 256, 384, 512],
    );
    sweep(
        "single GV100 (32 GB) - the memory-limited configuration",
        || Backend::gv100_pcie(1),
        &[256, 384, 512, 640],
    );
    println!(
        "paper's shape: sparse wins below sparsity ~0.8 (5x fewer cells at\n\
         ratio 0.2 outweigh the connectivity-table traffic); dense wins and\n\
         uses less memory when fully dense — and the sparse structure exhausts\n\
         device memory where the dense grid still fits (paper: 512^3/1.0; here\n\
         at 640^3/1.0 because this implementation's u32 connectivity tables\n\
         are leaner than the original's — see EXPERIMENTS.md)."
    );
}
