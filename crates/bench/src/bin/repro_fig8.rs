//! Reproduces **Fig. 8** of the paper (finite-difference Poisson solver,
//! matrix-free CG, 7-point stencil):
//!
//! * **top** — impact of the OCC configurations on a 320³ grid with an
//!   increasing number of GPUs, as parallel efficiency against the
//!   hand-tuned single-GPU CUDA+cuBLAS baseline. The paper's headline:
//!   no single OCC level always wins — Standard is best with ≤4 GPUs,
//!   Extended at 5, Two-way Extended with ≥6.
//! * **bottom** — parallel efficiency on 8 GPUs across grid sizes.
//!
//! Run with `-- top`, `-- bottom`, or nothing for both.

use neon_bench::{efficiency, poisson_baseline_single_gpu, poisson_iter_time, render_table};
use neon_core::OccLevel;
use neon_sys::{Backend, DeviceId};

fn top_for(system: &str, mk: impl Fn(usize) -> Backend) {
    const N: usize = 320;
    const ITERS: usize = 5;
    let device = mk(1).device(DeviceId(0)).clone();
    let t_base = poisson_baseline_single_gpu(&device, N);
    println!("-- system: {system}; baseline {t_base} per CG iteration --");
    let mut rows = Vec::new();
    for ndev in 1..=8 {
        let backend = mk(ndev);
        let mut row = vec![format!("{ndev}")];
        let mut best = (OccLevel::None, f64::NEG_INFINITY);
        for occ in OccLevel::ALL {
            let t = poisson_iter_time(&backend, N, occ, ITERS);
            let e = efficiency(t_base, ndev, t);
            if e > best.1 {
                best = (occ, e);
            }
            row.push(format!("{e:.3}"));
        }
        row.push(best.0.label().to_string());
        rows.push(row);
    }
    print!(
        "{}",
        render_table(&["GPUs", "no-OCC", "OCC", "eOCC", "2-eOCC", "best"], &rows)
    );
    println!();
}

fn top() {
    println!("== Fig. 8 (top): Poisson 320^3, OCC levels vs #GPUs ==\n");
    top_for("DGX A100 (NVLink)", Backend::dgx_a100);
    top_for("8x GV100 (PCIe Gen3, host-staged)", Backend::gv100_pcie);
    println!(
        "paper's shape: Neon ~matches the baseline on 1 GPU; no single OCC\n\
         level always wins — on the communication-bound system the best level\n\
         shifts from Standard to the deeper variants as GPUs are added.\n"
    );
}

fn bottom() {
    const NDEV: usize = 8;
    const ITERS: usize = 5;
    let device = Backend::dgx_a100(1).device(DeviceId(0)).clone();
    let backend = Backend::dgx_a100(NDEV);
    println!("== Fig. 8 (bottom): Poisson parallel efficiency on 8 GPUs vs grid size ==\n");
    let mut rows = Vec::new();
    for n in [192, 256, 320, 384, 448, 512] {
        let t_base = poisson_baseline_single_gpu(&device, n);
        let mut row = vec![format!("{n}^3")];
        for occ in OccLevel::ALL {
            let t = poisson_iter_time(&backend, n, occ, ITERS);
            row.push(format!("{:.3}", efficiency(t_base, NDEV, t)));
        }
        rows.push(row);
    }
    print!(
        "{}",
        render_table(&["Grid", "no-OCC", "OCC", "eOCC", "2-eOCC"], &rows)
    );
    println!(
        "\npaper's shape: with enough parallelism the OCC configurations\n\
         approach ideal efficiency; larger grids need less overlap.\n"
    );
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    match arg.as_str() {
        "top" => top(),
        "bottom" => bottom(),
        _ => {
            top();
            println!();
            bottom();
        }
    }
}
