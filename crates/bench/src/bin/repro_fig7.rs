//! Reproduces **Fig. 7** of the paper: parallel efficiency of the D3Q19
//! twoPop cavity on 8 A100s (NVLink) versus domain size, with and without
//! Standard OCC, plus the communication share of a no-OCC iteration
//! (paper: ≈49 % at 192³ dropping to ≈10 % at 512³).
//!
//! The baseline is the single-GPU Neon implementation, as in the paper.

use neon_bench::{
    a100_backend_with_link, efficiency, infinite_link, lbm_cavity_iter_time, render_table,
};
use neon_core::OccLevel;
use neon_sys::Backend;

fn main() {
    const ITERS: usize = 5;
    const NDEV: usize = 8;
    let single = Backend::dgx_a100(1);
    let multi = Backend::dgx_a100(NDEV);
    let comm_free = a100_backend_with_link(NDEV, infinite_link());

    println!("== Fig. 7: LBM twoPop parallel efficiency, 8x A100 (NVLink) ==\n");
    let mut rows = Vec::new();
    for n in [192, 256, 320, 384, 448, 512] {
        // Cached plans pin the previous size's fields (the plan holds the
        // container Arcs); drop them so the ledgers free the old grids.
        neon_core::clear_plan_cache();
        let t1 = lbm_cavity_iter_time(&single, n, OccLevel::None, ITERS);
        let t_none = lbm_cavity_iter_time(&multi, n, OccLevel::None, ITERS);
        let t_occ = lbm_cavity_iter_time(&multi, n, OccLevel::Standard, ITERS);
        let t_free = lbm_cavity_iter_time(&comm_free, n, OccLevel::None, ITERS);
        let comm_share = 1.0 - t_free.as_us() / t_none.as_us();
        rows.push(vec![
            format!("{n}^3"),
            format!("{:.1}", t1.as_us()),
            format!("{:.1}", t_none.as_us()),
            format!("{:.1}", t_occ.as_us()),
            format!("{:.3}", efficiency(t1, NDEV, t_none)),
            format!("{:.3}", efficiency(t1, NDEV, t_occ)),
            format!("{:.0}%", comm_share * 100.0),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "Domain",
                "t1 (us)",
                "t8 noOCC",
                "t8 OCC",
                "eff noOCC",
                "eff OCC",
                "comm share (noOCC)",
            ],
            &rows
        )
    );
    println!(
        "\npaper's shape: OCC reaches ~ideal efficiency at every size; no-OCC\n\
         climbs from heavily comm-bound (~49% comm at 192^3) to ~93% efficiency\n\
         at 512^3 (~10% comm) thanks to the fast interconnect."
    );
}
