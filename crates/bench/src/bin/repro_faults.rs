//! Fault-injection benchmark: 4-device Poisson CG at 64³ under a
//! deterministic fault plan, demonstrating the three recovery tiers of
//! the self-healing executor (see DESIGN.md §5):
//!
//! * **transient** — kernel/transfer faults absorbed by retry + backoff:
//!   only virtual time changes, the residual history stays bit-identical
//!   to the clean run;
//! * **rollback** — a fault that escapes retry restores the last
//!   checkpoint and replays; still bit-identical (failed attempts have no
//!   data side effects, fault specs are consumed once);
//! * **device-loss** — a device dies mid-run and is evicted: the solver
//!   recompiles on the survivors and resumes from the checkpoint. The
//!   pre-loss residual history is bit-identical to the clean run, and the
//!   whole history is bit-identical to a *voluntary eviction oracle* that
//!   switched to the survivor backend at the same iteration (post-loss
//!   bits differ from the 4-device run only through FP reduction
//!   grouping, which is inherent to the partition-count change).
//!
//! Reported per scenario: host wall-clock, total virtual time (where
//! retry backoff and replayed iterations show up as recovery overhead),
//! fault counters, rollbacks and evictions. The identity gates above are
//! asserted, not just printed.
//!
//! Output: a table on stdout and machine-readable JSON at
//! `results/BENCH_faults.json`.
//!
//! `--smoke` runs a small grid, asserts every gate and exits non-zero on
//! violation without touching the results file (CI hook).

use std::fmt::Write as _;
use std::time::Instant;

use neon_apps::{PoissonSolver, RecoveryReport, ResilientPoisson};
use neon_bench::render_table;
use neon_core::{ExecError, FaultPlan, OccLevel, ResilienceOptions, SkeletonOptions};
use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
use neon_sys::{Backend, DeviceId};

const NDEV: usize = 4;

fn options() -> SkeletonOptions {
    SkeletonOptions {
        occ: OccLevel::Standard,
        resilience: ResilienceOptions {
            enabled: true,
            checkpoint_interval: 4,
            ..ResilienceOptions::default()
        },
        ..Default::default()
    }
}

fn rhs_for(dim: usize) -> impl Fn(i32, i32, i32) -> f64 {
    move |x, y, z| {
        let c = (dim / 2) as i32;
        if x == c && y == c && z == c {
            1.0
        } else {
            0.0
        }
    }
}

struct ScenarioRun {
    label: &'static str,
    wall_ms: f64,
    /// Total virtual time over committed iterations (includes retry
    /// backoff and replayed work — the recovery overhead).
    virt_us: f64,
    residual_bits: Vec<u64>,
    final_residual: f64,
    injected: u64,
    recovered: u64,
    retries: u64,
    rollbacks: u64,
    replayed: u64,
    evictions: u64,
    devices_end: usize,
}

/// Run `iters` CG iterations, healing whatever `plan` throws at the
/// solver. With `chunked == false` the iterations run one at a time to
/// record the residual after each (per-call checkpoints); with
/// `chunked == true` they run as one resilient call, so an escaped fault
/// rolls back to the periodic checkpoint and *replays* — only the final
/// residual is recorded. `evict_at` drives the voluntary-eviction oracle.
fn run_scenario(
    label: &'static str,
    dim: usize,
    iters: usize,
    plan: Option<FaultPlan>,
    evict_at: Option<(u64, DeviceId)>,
    chunked: bool,
) -> ScenarioRun {
    let backend = Backend::dgx_a100(NDEV);
    let mut solver = ResilientPoisson::new(&backend, Dim3::cube(dim), options()).expect("solver");
    solver.set_rhs(rhs_for(dim));
    if let Some(p) = plan {
        solver.install_fault_plan(p);
    }

    let mut total = RecoveryReport::default();
    let mut residual_bits = Vec::with_capacity(iters);
    let t0 = Instant::now();
    if chunked {
        let r = solver.iterate(iters).expect("iterations should heal");
        total.report.accumulate(r.report);
        total.rollbacks += r.rollbacks;
        total.replayed += r.replayed;
        total.evictions += r.evictions;
        residual_bits.push(solver.residual().to_bits());
    } else {
        for i in 0..iters as u64 {
            if let Some((at, dead)) = evict_at {
                if i == at {
                    solver.evict_device(dead).expect("voluntary eviction");
                }
            }
            let r = solver.iterate(1).expect("iteration should heal");
            total.report.accumulate(r.report);
            total.rollbacks += r.rollbacks;
            total.replayed += r.replayed;
            total.evictions += r.evictions;
            residual_bits.push(solver.residual().to_bits());
        }
    }
    let wall = t0.elapsed();

    ScenarioRun {
        label,
        wall_ms: wall.as_secs_f64() * 1e3,
        virt_us: total.report.makespan.as_us(),
        residual_bits,
        final_residual: solver.residual(),
        injected: total.report.faults_injected,
        recovered: total.report.faults_recovered,
        retries: total.report.retries,
        rollbacks: total.rollbacks,
        replayed: total.replayed,
        evictions: total.evictions,
        devices_end: solver.backend().num_devices(),
    }
}

/// With recovery disabled, an injected fault must surface as a structured
/// [`ExecError`], not a panic.
fn check_structured_failure(dim: usize) {
    let backend = Backend::dgx_a100(NDEV);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, Dim3::cube(dim), &[&st], StorageMode::Real).expect("grid");
    let mut solver = PoissonSolver::with_options(
        &grid,
        SkeletonOptions {
            occ: OccLevel::Standard,
            ..Default::default() // resilience disabled: max_attempts == 1
        },
    )
    .expect("solver");
    solver.set_rhs(rhs_for(dim));
    solver.install_fault_plan(FaultPlan::none().with_kernel_fault(1, DeviceId(1), 0, 1));
    let err = solver
        .try_solve_iters(4)
        .expect_err("fault with recovery disabled must fail");
    assert!(
        matches!(err, ExecError::TransientFaultEscaped { device, .. } if device == DeviceId(1)),
        "expected a structured TransientFaultEscaped, got: {err}"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (dim, iters) = if smoke { (16, 8) } else { (64, 40) };
    let lost_at = iters as u64 / 2;
    let dead = DeviceId(2);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "== repro_faults: {NDEV}-device Poisson CG at {dim}^3, {iters} iterations, \
         device {} lost at iteration {lost_at}, host_cores={host_cores} ==\n",
        dead.0
    );

    let clean = run_scenario("clean", dim, iters, None, None, false);

    // Transient tier: one kernel fault and one transfer fault, both
    // recovered within the default 3-attempt budget.
    let transient_plan = FaultPlan::none()
        .with_kernel_fault(2, DeviceId(1), 0, 1)
        .with_transfer_fault(lost_at, DeviceId(3), 0, 2);
    let transient = run_scenario("transient", dim, iters, Some(transient_plan), None, false);

    // Rollback tier: a kernel fault that exhausts retry and forces a
    // checkpoint restore. The faulted iteration sits off the checkpoint
    // boundary, so healing genuinely replays iterations, and the run is
    // driven as one resilient call so the periodic checkpoints are what
    // the rollback lands on.
    let rollback_plan = FaultPlan::none().with_kernel_fault(lost_at + 2, DeviceId(0), 1, 10);
    let rollback = run_scenario("rollback", dim, iters, Some(rollback_plan), None, true);

    // Device-loss tier, plus its voluntary-eviction oracle.
    let loss_plan = FaultPlan::none().with_device_loss(lost_at, dead);
    let loss = run_scenario("device-loss", dim, iters, Some(loss_plan), None, false);
    let oracle = run_scenario(
        "evict-oracle",
        dim,
        iters,
        None,
        Some((lost_at, dead)),
        false,
    );

    let mut rows = Vec::new();
    for r in [&clean, &transient, &rollback, &loss, &oracle] {
        let overhead = (r.virt_us - clean.virt_us) / clean.virt_us * 100.0;
        rows.push(vec![
            r.label.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.1}", r.virt_us),
            format!("{overhead:+.1}%"),
            format!("{}/{}", r.recovered, r.injected),
            format!("{}", r.retries),
            format!("{}/{}", r.rollbacks, r.replayed),
            format!("{}", r.evictions),
            format!("{}", r.devices_end),
            format!("{:.3e}", r.final_residual),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "Scenario",
                "Wall (ms)",
                "Virtual (us)",
                "Overhead",
                "Recovered/Injected",
                "Retries",
                "Rollbacks/Replayed",
                "Evictions",
                "Devices",
                "Final residual",
            ],
            &rows
        )
    );
    println!();

    // --- Acceptance gates -------------------------------------------------
    let mut failed = false;
    let mut gate = |ok: bool, msg: &str| {
        if ok {
            println!("PASS: {msg}");
        } else {
            eprintln!("FAIL: {msg}");
            failed = true;
        }
    };

    gate(
        transient.residual_bits == clean.residual_bits,
        "retried faults leave the residual history bit-identical",
    );
    gate(
        transient.injected >= 2 && transient.recovered >= 2 && transient.retries >= 3,
        "transient scenario actually injected and recovered faults",
    );
    gate(
        rollback.residual_bits.last() == clean.residual_bits.last(),
        "checkpoint rollback reconverges bit-identically",
    );
    gate(
        rollback.rollbacks >= 1 && rollback.replayed >= 1,
        "rollback scenario actually rolled back and replayed",
    );
    gate(
        rollback.virt_us > clean.virt_us,
        "replayed iterations cost virtual time (rollback overhead is visible)",
    );
    gate(
        loss.residual_bits[..lost_at as usize] == clean.residual_bits[..lost_at as usize],
        "pre-loss residual history is bit-identical to the clean run",
    );
    gate(
        loss.residual_bits == oracle.residual_bits,
        "post-loss history matches the voluntary-eviction oracle bit-for-bit",
    );
    gate(
        loss.evictions == 1 && loss.devices_end == NDEV - 1,
        "device loss healed by exactly one eviction",
    );
    gate(
        loss.virt_us > clean.virt_us,
        "losing a device costs virtual time (capability loss is visible)",
    );
    check_structured_failure(dim);
    println!("PASS: recovery-disabled faults fail with a structured error, no panic");

    if failed {
        std::process::exit(1);
    }
    let overhead_transient = (transient.virt_us - clean.virt_us) / clean.virt_us * 100.0;
    let overhead_loss = (loss.virt_us - clean.virt_us) / clean.virt_us * 100.0;
    println!(
        "\nrecovery overhead: transient {overhead_transient:+.2}% virtual time, \
         device loss {overhead_loss:+.2}% (includes running on {} devices after eviction)",
        NDEV - 1
    );

    if smoke {
        return; // CI gate: identities checked, no results file
    }

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"bench\":\"repro_faults\",\"devices\":{NDEV},\"dim\":{dim},\
         \"iters\":{iters},\"lost_at\":{lost_at},\"dead_device\":{},\
         \"host_cores\":{host_cores},\
         \"transient_overhead_pct\":{overhead_transient:.4},\
         \"device_loss_overhead_pct\":{overhead_loss:.4},\"scenarios\":[",
        dead.0
    );
    for (i, r) in [&clean, &transient, &rollback, &loss, &oracle]
        .iter()
        .enumerate()
    {
        let _ = write!(
            json,
            "{}{{\"scenario\":\"{}\",\"wall_ms\":{:.3},\"virtual_us\":{:.3},\
             \"faults_injected\":{},\"faults_recovered\":{},\"retries\":{},\
             \"rollbacks\":{},\"replayed\":{},\"evictions\":{},\"devices_end\":{},\
             \"final_residual\":{:.6e},\"bit_identical_to_clean\":{}}}",
            if i == 0 { "" } else { "," },
            r.label,
            r.wall_ms,
            r.virt_us,
            r.injected,
            r.recovered,
            r.retries,
            r.rollbacks,
            r.replayed,
            r.evictions,
            r.devices_end,
            r.final_residual,
            r.residual_bits.last() == clean.residual_bits.last(),
        );
    }
    json.push_str("]}");
    std::fs::create_dir_all("results").expect("results dir");
    let path = "results/BENCH_faults.json";
    std::fs::write(path, &json).expect("write results JSON");
    println!("wrote {path}");
}
