//! Container-fusion benchmark: 4-device Poisson CG at 64³, compiled with
//! fusion Off vs Conservative, same program, same data.
//!
//! What fusion buys per CG iteration (see DESIGN.md §4c): the map chains
//! `scale(p)+axpy(p)`, `apply+dot(p,Ap)` and `axpy(x)+axpy(r)+dot(r,r)`
//! each collapse into one field sweep, so the iteration drops from eight
//! compute launches per device to three, and re-reads of just-written
//! fields are served from registers instead of a second sweep. Both
//! configurations must produce **bit-identical** residual histories —
//! Conservative fusion never reorders or re-associates per-cell work, it
//! only merges consecutive sweeps of the same grid.
//!
//! Reported per configuration: wall-clock of the functional executor,
//! kernel launches and bytes swept (from [`neon_core::ExecReport`]),
//! and the reduction ratios. The acceptance gates from the issue —
//! ≥40 % fewer launches, ≥25 % fewer bytes per iteration — are asserted
//! here, not just printed.
//!
//! Output: a table on stdout and machine-readable JSON at
//! `results/BENCH_fusion.json`.
//!
//! `--smoke` runs a small grid, asserts bit-identity and the reduction
//! gates, and exits non-zero on violation without touching the results
//! file (CI hook).

use std::fmt::Write as _;
use std::time::Instant;

use neon_apps::PoissonSolver;
use neon_bench::render_table;
use neon_core::{FusionLevel, OccLevel, SkeletonOptions};
use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
use neon_sys::Backend;

const NDEV: usize = 4;

#[derive(Clone)]
struct FusionRun {
    label: &'static str,
    wall_ms: f64,
    mlups: f64,
    launches: u64,
    bytes_moved: u64,
    /// Bit pattern of ‖r‖² after every iteration.
    residual_bits: Vec<u64>,
    final_residual: f64,
}

fn merge_best(best: &mut Option<FusionRun>, run: FusionRun) {
    match best {
        Some(b) => {
            assert_eq!(
                b.residual_bits, run.residual_bits,
                "{}: residuals differ between repeats",
                run.label
            );
            assert_eq!(
                b.launches, run.launches,
                "{}: launch count is not stable",
                run.label
            );
            if run.wall_ms < b.wall_ms {
                b.wall_ms = run.wall_ms;
                b.mlups = run.mlups;
            }
        }
        None => *best = Some(run),
    }
}

fn run_config(fusion: FusionLevel, label: &'static str, dim: usize, iters: usize) -> FusionRun {
    let backend = Backend::dgx_a100(NDEV);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(
        &backend,
        Dim3::new(dim, dim, dim),
        &[&st],
        StorageMode::Real,
    )
    .expect("grid");
    let mut solver = PoissonSolver::with_options(
        &grid,
        SkeletonOptions {
            occ: OccLevel::Standard,
            fusion,
            ..Default::default()
        },
    )
    .expect("solver");
    let rhs = move |x: i32, y: i32, z: i32| {
        let c = (dim / 2) as i32;
        if x == c && y == c && z == c {
            1.0
        } else {
            0.0
        }
    };
    solver.set_rhs(rhs);

    // Warm up (compile, fault in partitions), then reset to the same
    // starting state so both configurations integrate the same system.
    // The measured window is metered with counter-snapshot deltas, not a
    // global reset — the queue counters are shared, cumulative state.
    solver.solve_iters(3);
    solver.set_rhs(rhs);
    let before = solver.counters_snapshot();

    let mut residual_bits = Vec::with_capacity(iters);
    let mut launches = 0u64;
    let mut bytes_moved = 0u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        let report = solver.solve_iters(1);
        launches += report.launches;
        bytes_moved += report.bytes_moved;
        // rs_old holds ‖r‖² of the iteration that just completed.
        residual_bits.push(solver.cg.state.rs_old.host_value().to_bits());
    }
    let wall = t0.elapsed();
    // Cross-check the two accounting paths over the same window: the
    // queue-counter delta must agree with the summed per-call reports.
    let window = solver.counters_snapshot() - before;
    assert_eq!(window.kernel_launches, launches, "window delta drifted");
    assert_eq!(window.kernel_bytes_moved, bytes_moved, "byte delta drifted");

    let cells = (dim * dim * dim) as f64;
    let wall_s = wall.as_secs_f64();
    FusionRun {
        label,
        wall_ms: wall_s * 1e3,
        mlups: cells * iters as f64 / wall_s / 1e6,
        launches,
        bytes_moved,
        residual_bits,
        final_residual: solver.residual(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (dim, iters) = if smoke { (16, 8) } else { (64, 40) };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "== repro_fusion: {NDEV}-device Poisson CG at {dim}^3, {iters} iterations, \
         host_cores={host_cores} ==\n"
    );

    // Interleaved best-of-N, same rationale as repro_functional: the
    // first ladder rung warms the allocator for everyone, so repeat the
    // whole ladder and keep each configuration's best wall-clock.
    let repeats = if smoke { 1 } else { 3 };
    let (mut off, mut fused) = (None, None);
    for _ in 0..repeats {
        merge_best(&mut off, run_config(FusionLevel::Off, "off", dim, iters));
        merge_best(
            &mut fused,
            run_config(FusionLevel::Conservative, "conservative", dim, iters),
        );
    }
    let (off, fused) = (off.unwrap(), fused.unwrap());

    let identical = off.residual_bits == fused.residual_bits;
    let launch_cut = 1.0 - fused.launches as f64 / off.launches as f64;
    let bytes_cut = 1.0 - fused.bytes_moved as f64 / off.bytes_moved as f64;

    let mut rows = Vec::new();
    for r in [&off, &fused] {
        rows.push(vec![
            r.label.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.1}", r.mlups),
            format!("{}", r.launches),
            format!("{:.1}", r.bytes_moved as f64 / 1e6),
            format!("{:.3e}", r.final_residual),
            if r.residual_bits == off.residual_bits {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "Fusion",
                "Wall (ms)",
                "MLUPS",
                "Launches",
                "Bytes swept (MB)",
                "Final residual",
                "Bit-identical"
            ],
            &rows
        )
    );
    println!();
    println!(
        "launches: {} -> {} ({:.1}% fewer); bytes swept: {:.1} MB -> {:.1} MB ({:.1}% fewer)",
        off.launches,
        fused.launches,
        launch_cut * 100.0,
        off.bytes_moved as f64 / 1e6,
        fused.bytes_moved as f64 / 1e6,
        bytes_cut * 100.0,
    );

    if !identical {
        eprintln!("FAIL: fused residual history diverges from the unfused reference");
        std::process::exit(1);
    }
    if launch_cut < 0.40 {
        eprintln!(
            "FAIL: fusion cut launches by only {:.1}% (< 40%)",
            launch_cut * 100.0
        );
        std::process::exit(1);
    }
    if bytes_cut < 0.25 {
        eprintln!(
            "FAIL: fusion cut bytes by only {:.1}% (< 25%)",
            bytes_cut * 100.0
        );
        std::process::exit(1);
    }
    println!("bit-identical, launch and byte reduction gates met");

    if smoke {
        return; // CI gate: identity + reductions checked, no results file
    }

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"bench\":\"repro_fusion\",\"devices\":{NDEV},\"dim\":{dim},\
         \"iters\":{iters},\"host_cores\":{host_cores},\"bit_identical\":{identical},\
         \"launch_reduction\":{launch_cut:.4},\"bytes_reduction\":{bytes_cut:.4},\
         \"configs\":["
    );
    for (i, r) in [&off, &fused].iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"fusion\":\"{}\",\"wall_ms\":{:.3},\"mlups\":{:.3},\
             \"launches\":{},\"bytes_moved\":{},\"final_residual\":{:.6e}}}",
            if i == 0 { "" } else { "," },
            r.label,
            r.wall_ms,
            r.mlups,
            r.launches,
            r.bytes_moved,
            r.final_residual,
        );
    }
    json.push_str("]}");
    std::fs::create_dir_all("results").expect("results dir");
    let path = "results/BENCH_fusion.json";
    std::fs::write(path, &json).expect("write results JSON");
    println!("wrote {path}");
}
