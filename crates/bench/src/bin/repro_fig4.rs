//! Reproduces **Fig. 4** of the paper: the three Skeleton stages for the
//! running example — `axpy` (map) → `laplace` (stencil) → `dot` (reduce):
//!
//! (b) the data dependency graph extracted from the Loader records,
//! (c) the multi-GPU graph with the halo-update node and the redundant
//!     map→dot edge removed,
//! (d) the Two-way-Extended-OCC graph with split nodes and scheduling
//!     hints,
//!
//! plus the BFS stream-mapping levels (the paper's Fig. 5) and the final
//! task list (Fig. 6). Graphviz DOT for each stage is written to the
//! system temp directory.

use neon_core::{apply_occ, build_dependency_graph, build_schedule, to_multigpu_graph, OccLevel};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, FieldRead as _, FieldStencil as _, FieldWrite as _,
    GridLike, MemLayout, ScalarSet, Stencil, StorageMode,
};
use neon_sys::Backend;

fn main() {
    let backend = Backend::dgx_a100(2);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(
        &backend,
        Dim3::new(32, 32, 16),
        &[&st],
        StorageMode::Virtual,
    )
    .unwrap();
    let x = Field::<f64, _>::new(&grid, "X", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&grid, "Y", 1, 0.0, MemLayout::SoA).unwrap();
    let l = Field::<f64, _>::new(&grid, "L", 1, 0.0, MemLayout::SoA).unwrap();
    let dot_s = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);

    // The paper's snippet: axpy writes X from Y; laplace reads X through
    // the stencil and writes L; dot reduces L.
    let axpy = ops::axpy_const(&grid, 2.0, &y, &x);
    let laplace = {
        let (xc, lc) = (x.clone(), l.clone());
        Container::compute("laplace", grid.as_space(), move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let lv = ldr.write(&lc);
            Box::new(move |c| {
                let mut s = 0.0;
                for slot in 0..6 {
                    s += xv.ngh(c, slot, 0);
                }
                lv.set(c, 0, s - 6.0 * xv.at(c, 0));
            })
        })
    };
    let dotc = ops::dot(&grid, &l, &l, &dot_s);
    let containers = vec![axpy, laplace, dotc];

    let dep = build_dependency_graph(&containers);
    let mg = to_multigpu_graph(&dep, 2);
    let occ = apply_occ(&mg, OccLevel::TwoWayExtended);

    let dump = |name: &str, g: &neon_core::Graph| {
        println!("== Fig. 4{name} ==");
        for (i, n) in g.nodes().iter().enumerate() {
            println!("  n{i}: {} [{:?}]", n.name, n.kind);
        }
        for e in g.edges() {
            println!(
                "  {} -> {}  ({:?})",
                g.node(e.from).name,
                g.node(e.to).name,
                e.kind
            );
        }
        let path = std::env::temp_dir().join(format!("neon_fig4{name}.dot"));
        std::fs::write(&path, g.to_dot(&format!("fig4{name}"))).unwrap();
        println!("  (DOT written to {})\n", path.display());
    };
    dump("b-dependency-graph", &dep);
    dump("c-multigpu-graph", &mg);
    dump("d-two-way-occ-graph", &occ);

    println!("== Fig. 5: BFS levels over data edges (stream mapping) ==");
    for (i, level) in occ.bfs_levels(false).iter().enumerate() {
        let names: Vec<_> = level.iter().map(|&n| occ.node(n).name.clone()).collect();
        println!("  level {i}: {}", names.join(", "));
    }

    println!("\n== Fig. 6: scheduled task list ==");
    let schedule = build_schedule(&occ, 8);
    print!("{}", schedule.render(&occ));
}
