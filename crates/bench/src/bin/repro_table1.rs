//! Reproduces **Table I** of the paper: Neon vs Taichi on the 2-D Kármán
//! vortex street (D2Q9 LBM), single A100, LUPS over growing domains.
//!
//! Neon's numbers come from actually running the Kármán skeleton on the
//! virtual clock; Taichi is the analytic JIT-framework model (same kernel
//! quality at scale, larger per-iteration dispatch overhead — see
//! DESIGN.md §2 for the substitution argument).

use neon_apps::lbm::d2q9::{KarmanParams, KarmanVortex};
use neon_apps::lbm::{mlups, AnalyticLbm};
use neon_bench::render_table;
use neon_core::OccLevel;
use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
use neon_sys::Backend;

fn main() {
    const ITERS: usize = 10;
    let backend = Backend::dgx_a100(1);
    let taichi = AnalyticLbm::taichi_d2q9();
    let device = backend.device(neon_sys::DeviceId(0)).clone();

    println!("== Table I: Neon vs Taichi, 2-D Karman vortex (D2Q9), 1x A100 ==\n");
    let mut rows = Vec::new();
    for (nx, ny) in [(4096, 1024), (8192, 2048), (16384, 4096), (32768, 8192)] {
        // Cached plans pin the previous size's fields (the plan holds the
        // container Arcs); drop them so the ledgers free the old grids.
        neon_core::clear_plan_cache();
        let st = Stencil::d2q9();
        let g = DenseGrid::new(&backend, Dim3::new(nx, ny, 1), &[&st], StorageMode::Virtual)
            .expect("grid");
        let mut app = KarmanVortex::new(&g, KarmanParams::for_domain(nx, ny), OccLevel::None)
            .expect("fields");
        app.init();
        // Meter this sweep size with a snapshot delta instead of resetting
        // the cumulative (shared) queue counters.
        let before = app.counters_snapshot();
        let r = app.step(ITERS);
        let t = r.time_per_execution();
        let window = app.counters_snapshot() - before;
        assert_eq!(window.kernel_launches, r.launches, "window delta drifted");
        let cells = (nx * ny) as u64;
        let neon_mlups = mlups(cells, 1, t.as_us());
        let taichi_mlups = taichi.mlups(&device, cells);
        rows.push(vec![
            format!("{nx} x {ny}"),
            format!("{neon_mlups:.1}"),
            format!("{taichi_mlups:.1}"),
            format!("{:.3}", neon_mlups / taichi_mlups),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["Domain Size", "Neon (MLUPS)", "Taichi (MLUPS)", "Speedup"],
            &rows
        )
    );
    println!(
        "\npaper's shape: Neon ~1.14x at the smallest domain (JIT dispatch\n\
         overhead dominates), parity (0.98-1.00) at larger domains."
    );
}
