//! Ablation studies for the design choices DESIGN.md calls out (beyond
//! the paper's own figures):
//!
//! 1. **Interconnect class** — NVLink vs PCIe Gen3: how much OCC recovers
//!    on the slow interconnect (the paper's second system).
//! 2. **Scheduling hints** — OCC graphs scheduled with hints disabled:
//!    the split alone does not produce overlap if boundary halves are
//!    enqueued before internal ones.
//! 3. **SoA vs AoS** — halo transfer structure (2n vs 2 transfers per
//!    partition) and its timing impact on the LBM cavity.
//! 4. **Kernel concurrency** — letting concurrent kernels each claim full
//!    device bandwidth (instead of serializing them) produces unphysical
//!    super-linear efficiency; this documents why the model serializes.

use neon_apps::lbm::{LbmParams, LidDrivenCavity};
use neon_bench::render_table;
use neon_core::{OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    Cell, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike,
    MemLayout, Stencil, StorageMode,
};
use neon_sys::Backend;

fn lbm_time(backend: &Backend, n: usize, occ: OccLevel) -> f64 {
    let st = Stencil::d3q19();
    let g = DenseGrid::new(backend, Dim3::cube(n), &[&st], StorageMode::Virtual).unwrap();
    let mut app = LidDrivenCavity::new(&g, LbmParams::default(), occ).unwrap();
    app.init();
    app.step(5).time_per_execution().as_us()
}

fn interconnect_ablation() {
    println!("-- ablation 1: interconnect class (LBM cavity 256^3, 8 GPUs) --");
    let mut rows = Vec::new();
    for (name, backend) in [
        ("NVLink (DGX A100)", Backend::dgx_a100(8)),
        ("PCIe Gen3 (GV100 box)", Backend::gv100_pcie(8)),
    ] {
        let none = lbm_time(&backend, 256, OccLevel::None);
        let occ = lbm_time(&backend, 256, OccLevel::Standard);
        rows.push(vec![
            name.to_string(),
            format!("{none:.1}"),
            format!("{occ:.1}"),
            format!("{:.2}x", none / occ),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "interconnect",
                "noOCC t/iter (us)",
                "OCC t/iter (us)",
                "OCC gain"
            ],
            &rows
        )
    );
    println!();
}

fn hints_ablation() {
    // The decisive hint is the two-way one (paper Fig. 4d): launch the
    // reduce-internal half before the stencil-boundary half so it fills
    // the halo-wait gap. Without it the boundary half stalls the compute
    // lane on the (slow, PCIe) halo.
    println!("-- ablation 2: scheduling hints (map+stencil+dot, 8 GPUs, PCIe, two-way OCC) --");
    let backend = Backend::gv100_pcie(8);
    let mut rows = Vec::new();
    for (name, hints) in [("hints on", true), ("hints off", false)] {
        let st = Stencil::seven_point();
        let g = DenseGrid::new(
            &backend,
            Dim3::new(256, 256, 64),
            &[&st],
            StorageMode::Virtual,
        )
        .unwrap();
        let x = Field::<f64, _>::new(&g, "x", 8, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 8, 0.0, MemLayout::SoA).unwrap();
        let dot = neon_domain::ScalarSet::<f64>::new(8, "dot", 0.0, |a, b| a + b);
        let map = {
            let xc = x.clone();
            Container::compute("map", g.as_space(), move |ldr| {
                let xv = ldr.read_write(&xc);
                Box::new(move |c: Cell| xv.set(c, 0, xv.at(c, 0) + 1.0))
            })
        };
        let sten = {
            let (xc, yc) = (x.clone(), y.clone());
            Container::compute("stn", g.as_space(), move |ldr| {
                let xv = ldr.read_stencil(&xc);
                let yv = ldr.write(&yc);
                Box::new(move |c: Cell| yv.set(c, 0, xv.ngh(c, 0, 0)))
            })
        };
        let red = neon_domain::ops::dot(&g, &y, &y, &dot);
        let opts = SkeletonOptions {
            occ: OccLevel::TwoWayExtended,
            hints,
            // Fusing stn+dot would leave OCC nothing to split — this
            // ablation is about hint edges on the split graph.
            fusion: neon_core::FusionLevel::Off,
            ..Default::default()
        };
        let t = Skeleton::sequence(&backend, "pipeline", vec![map, sten, red], opts)
            .run_iters(5)
            .time_per_execution();
        rows.push(vec![name.to_string(), format!("{:.1}", t.as_us())]);
    }
    print!("{}", render_table(&["scheduler", "t/iter (us)"], &rows));
    println!();
}

fn layout_ablation() {
    println!("-- ablation 3: SoA vs AoS halo structure (19-component field, 4 GPUs) --");
    let backend = Backend::dgx_a100(4);
    let st = Stencil::d3q19();
    let g = DenseGrid::new(&backend, Dim3::cube(192), &[&st], StorageMode::Virtual).unwrap();
    let mut rows = Vec::new();
    for (name, layout) in [("SoA", MemLayout::SoA), ("AoS", MemLayout::AoS)] {
        let f = Field::<f64, _>::new(&g, "f", 19, 0.0, layout).unwrap();
        let o = Field::<f64, _>::new(&g, "o", 19, 0.0, layout).unwrap();
        let sten = {
            let (fc, oc) = (f.clone(), o.clone());
            Container::compute("stn", g.as_space(), move |ldr| {
                let fv = ldr.read_stencil(&fc);
                let ov = ldr.write(&oc);
                Box::new(move |c: Cell| ov.set(c, 0, fv.ngh(c, 0, 0)))
            })
        };
        let n_transfers = g.halo_segments(19, layout).len();
        let t = Skeleton::sequence(
            &backend,
            "halo",
            vec![sten],
            SkeletonOptions::with_occ(OccLevel::None),
        )
        .run_iters(5)
        .time_per_execution();
        rows.push(vec![
            name.to_string(),
            format!("{n_transfers}"),
            format!("{:.1}", t.as_us()),
        ]);
    }
    print!(
        "{}",
        render_table(&["layout", "halo transfers", "t/iter (us)"], &rows)
    );
    println!("(paper §IV-C2: SoA needs 2n transfers per partition pair, AoS needs 2)\n");
}

fn kernel_concurrency_ablation() {
    println!("-- ablation 4: kernel bandwidth contention model (LBM 256^3, 8 GPUs) --");
    let backend = Backend::dgx_a100(8);
    let st = Stencil::d3q19();
    let g = DenseGrid::new(&backend, Dim3::cube(256), &[&st], StorageMode::Virtual).unwrap();
    let mut rows = Vec::new();
    for (name, conc) in [
        ("serialized (default)", false),
        ("concurrent, full bw each", true),
    ] {
        let f0 = Field::<f64, _>::new(&g, "f0", 19, 0.0, MemLayout::SoA).unwrap();
        let f1 = Field::<f64, _>::new(&g, "f1", 19, 0.0, MemLayout::SoA).unwrap();
        let opts = SkeletonOptions {
            occ: OccLevel::Standard,
            kernel_concurrency: conc,
            ..Default::default()
        };
        let step = neon_apps::lbm::d3q19::stream_collide(
            &g,
            &f0,
            &f1,
            neon_apps::lbm::LbmParams::default(),
        );
        let t = Skeleton::sequence(&backend, "conc", vec![step], opts)
            .run_iters(5)
            .time_per_execution();
        rows.push(vec![name.to_string(), format!("{:.1}", t.as_us())]);
    }
    print!(
        "{}",
        render_table(&["contention model", "t/iter (us)"], &rows)
    );
    println!("(concurrent mode undercounts: both stencil halves would stream at full bandwidth)\n");
}

fn unified_memory_ablation() {
    // Paper §IV-C2 weighs two halo-coherency designs and picks explicit
    // transfers; this quantifies the alternative.
    use neon_core::HaloPolicy;
    println!("-- ablation 5: halo coherency model (LBM 256^3, 8 GPUs, NVLink) --");
    let backend = Backend::dgx_a100(8);
    let st = Stencil::d3q19();
    let g = DenseGrid::new(&backend, Dim3::cube(256), &[&st], StorageMode::Virtual).unwrap();
    let mut rows = Vec::new();
    for (name, policy) in [
        ("explicit transfers", HaloPolicy::ExplicitTransfers),
        ("unified memory", HaloPolicy::unified_default()),
    ] {
        let mut per_occ = vec![name.to_string()];
        for occ in [OccLevel::None, OccLevel::Standard] {
            let f0 = Field::<f64, _>::new(&g, "f0", 19, 0.0, MemLayout::SoA).unwrap();
            let f1 = Field::<f64, _>::new(&g, "f1", 19, 0.0, MemLayout::SoA).unwrap();
            let step = neon_apps::lbm::d3q19::stream_collide(
                &g,
                &f0,
                &f1,
                neon_apps::lbm::LbmParams::default(),
            );
            let opts = SkeletonOptions {
                occ,
                halo_policy: policy,
                ..Default::default()
            };
            let t = Skeleton::sequence(&backend, "halo-policy", vec![step], opts)
                .run_iters(5)
                .time_per_execution();
            per_occ.push(format!("{:.1}", t.as_us()));
        }
        rows.push(per_occ);
    }
    print!(
        "{}",
        render_table(
            &["coherency model", "noOCC t/iter (us)", "OCC t/iter (us)"],
            &rows
        )
    );
    println!(
        "(page faults serialize with kernels: unified memory cannot be overlapped,
 the penalty the paper cites for choosing explicit transfers)
"
    );
}

fn data_structure_ablation() {
    // Extends Fig. 9's two-way comparison with the block-sparse design
    // point: per-block metadata vs per-cell metadata vs no metadata.
    use neon_apps::fem::{ElasticitySolver, Material};
    use neon_bench::{peak_device_demand, sparse_cube_grid};
    use neon_domain::BlockSparseGrid;
    println!("-- ablation 6: data structures on FEM elasticity (256^3, ratio 0.2, 8 GPUs) --");
    const N: usize = 256;
    const RATIO: f64 = 0.2;
    const ITERS: usize = 3;
    let st = Stencil::twenty_seven_point();
    let side = (N as f64 * RATIO.cbrt()).round() as i32;
    let lo = ((N as i32) - side) / 2;
    let hi = lo + side;
    let mask = move |x: i32, y: i32, z: i32| x >= lo && x < hi && y >= lo && y < hi && z < side;
    let mut rows = Vec::new();
    {
        let b = Backend::dgx_a100(8);
        let g = DenseGrid::new(&b, Dim3::cube(N), &[&st], StorageMode::Virtual).unwrap();
        let mut s =
            ElasticitySolver::new(&g, Material::default(), MemLayout::SoA, OccLevel::Standard)
                .unwrap();
        let t = s.solve_iters(ITERS).time_per_execution();
        rows.push(vec![
            "dense".to_string(),
            format!("{:.2}", t.as_ms()),
            format!("{:.2}", peak_device_demand(&b) as f64 / (1u64 << 30) as f64),
        ]);
    }
    {
        let b = Backend::dgx_a100(8);
        let g = sparse_cube_grid(&b, N, RATIO, StorageMode::Virtual).unwrap();
        let mut s =
            ElasticitySolver::new(&g, Material::default(), MemLayout::SoA, OccLevel::Standard)
                .unwrap();
        let t = s.solve_iters(ITERS).time_per_execution();
        rows.push(vec![
            "element-sparse".to_string(),
            format!("{:.2}", t.as_ms()),
            format!("{:.2}", peak_device_demand(&b) as f64 / (1u64 << 30) as f64),
        ]);
    }
    {
        let b = Backend::dgx_a100(8);
        let g =
            BlockSparseGrid::new(&b, Dim3::cube(N), 4, &[&st], mask, StorageMode::Virtual).unwrap();
        let mut s =
            ElasticitySolver::new(&g, Material::default(), MemLayout::SoA, OccLevel::Standard)
                .unwrap();
        let t = s.solve_iters(ITERS).time_per_execution();
        rows.push(vec![
            "block-sparse (B=4)".to_string(),
            format!("{:.2}", t.as_ms()),
            format!("{:.2}", peak_device_demand(&b) as f64 / (1u64 << 30) as f64),
        ]);
    }
    print!(
        "{}",
        render_table(&["data structure", "t/iter (ms)", "peak GiB/dev"], &rows)
    );
    println!(
        "(block-sparse trades a little padding compute for ~B^3-times lighter
 connectivity metadata than element-sparse)
"
    );
}

fn heterogeneous_ablation() {
    // Paper §VII future work: heterogeneous parallel systems. Mixing
    // A100s and GV100s, even partitioning lets the slow devices dominate;
    // bandwidth-proportional slabs rebalance.
    use neon_domain::PartitionStrategy;
    use neon_sys::{BackendKind, DeviceModel, Topology};
    println!("-- ablation 7: heterogeneous system (2x A100 + 2x GV100, 7-pt stencil 256^3) --");
    let devices = vec![
        DeviceModel::a100_40gb(),
        DeviceModel::a100_40gb(),
        DeviceModel::gv100(),
        DeviceModel::gv100(),
    ];
    let backend = Backend::new(
        BackendKind::Gpu,
        devices,
        Topology::nvlink_all_to_all(4, 1555.0),
    )
    .unwrap();
    let st = Stencil::seven_point();
    let mut rows = Vec::new();
    for (name, strategy) in [
        ("even layers", PartitionStrategy::Even),
        (
            "bandwidth-proportional",
            PartitionStrategy::DeviceProportional,
        ),
    ] {
        let g = DenseGrid::with_partitioning(
            &backend,
            Dim3::cube(256),
            &[&st],
            StorageMode::Virtual,
            strategy,
        )
        .unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        let sten = {
            let (xc, yc) = (x.clone(), y.clone());
            Container::compute("stn", g.as_space(), move |ldr| {
                let xv = ldr.read_stencil(&xc);
                let yv = ldr.write(&yc);
                Box::new(move |c: Cell| yv.set(c, 0, xv.ngh(c, 0, 0)))
            })
        };
        let t = Skeleton::sequence(
            &backend,
            "hetero",
            vec![sten],
            SkeletonOptions::with_occ(OccLevel::Standard),
        )
        .run_iters(5)
        .time_per_execution();
        use neon_domain::GridLike as _;
        let layers: Vec<String> = (0..4)
            .map(|d| {
                let (a, b) = g.owned_z_range(neon_sys::DeviceId(d));
                format!("{}", b - a)
            })
            .collect();
        rows.push(vec![
            name.to_string(),
            layers.join("/"),
            format!("{:.1}", t.as_us()),
        ]);
    }
    print!(
        "{}",
        render_table(&["partitioning", "layers per device", "t/iter (us)"], &rows)
    );
    println!("(bandwidth-proportional slabs stop the slow devices from dominating)\n");
}

fn compile_cache_ablation() {
    // The skeleton pipeline (graph → multi-GPU → OCC → collectives →
    // schedule) is a compiler; this splits its one-time wall-clock cost
    // from the per-iteration virtual run time and shows the plan cache:
    // a structurally identical solver — even on a different grid size —
    // reuses the compiled plan instead of re-running the passes.
    use neon_bench::poisson_compile_run_split;
    use neon_core::{clear_plan_cache, plan_cache_stats};
    println!("-- ablation 8: compile vs run split and the plan cache (Poisson CG, 8 GPUs) --");
    clear_plan_cache();
    let before = plan_cache_stats();
    let backend = Backend::dgx_a100(8);
    let mut rows = Vec::new();
    for (name, n) in [
        ("first build, 256^3", 256),
        ("rebuild, same shape", 256),
        ("rebuild, 320^3 grid", 320),
    ] {
        let (compile, run, cached) = poisson_compile_run_split(&backend, n, OccLevel::Standard, 3);
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", compile.as_us()),
            format!("{:.1}", run.as_us()),
            (if cached { "hit" } else { "miss" }).to_string(),
        ]);
    }
    let after = plan_cache_stats();
    print!(
        "{}",
        render_table(
            &[
                "solver build",
                "compile (us, wall)",
                "t/iter (us, virtual)",
                "iter plan"
            ],
            &rows
        )
    );
    println!(
        "(plan cache this section: {} hits / {} misses — the CG iteration
 pipeline ran once; rebuilds rebind the cached plan to fresh fields)\n",
        after.hits - before.hits,
        after.misses - before.misses,
    );
}

fn main() {
    println!("== Ablations (beyond the paper's figures) ==\n");
    interconnect_ablation();
    hints_ablation();
    layout_ablation();
    kernel_concurrency_ablation();
    unified_memory_ablation();
    data_structure_ablation();
    heterogeneous_ablation();
    compile_cache_ablation();
}
