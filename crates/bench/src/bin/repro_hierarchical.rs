//! Hierarchical-collective + chunked-communication benchmark.
//!
//! Part 1 — **topology-aware collectives**: all-reduce makespan and
//! slow-link (host root complex) traffic for the hierarchical schedule vs
//! the best *flat* algorithm (`choose_flat`'s pick), across 2/4/8 devices
//! carved into NVLink islands of different shapes. On mixed topologies
//! the hierarchical schedule reduces inside each island over dedicated
//! NVLink, crosses the slow inter-island path the spanning minimum
//! `2(r-1)` times, and broadcasts back — the flat ring instead drags
//! every shard step over the slow links.
//!
//! Part 2 — **per-chunk event-driven overlap**: a Jacobi stencil sweep on
//! a PCIe box run in the default epoch mode (consumers wait whole halo
//! epochs) vs `CommMode::ChunkEvents` (payloads stream in chunks, the
//! consuming kernel splits into an interior span that overlaps the
//! transfers and a boundary span gated only on the last arriving chunk).
//! The per-iteration gap at 8 devices is the *exposed host round-trip
//! latency* the epoch barrier was hiding behind the kernel.
//!
//! `--smoke` asserts, on small grids, the full gate set — bit-identity of
//! both optimizations, the ≥20 % hierarchical makespan win on the
//! 2-island × 4-device cell with strictly reduced slow-link bytes,
//! auto-selection of the hierarchical schedule on mixed topologies, and
//! chunk-events never losing to epoch mode — and exits non-zero on any
//! violation without touching the results file (CI hook). The full run
//! re-checks the gates and writes `results/BENCH_hierarchical.json`.

use std::fmt::Write as _;

use neon_bench::render_table;
use neon_comm::{choose, choose_flat, Algorithm, CollectiveEngine, CollectiveKind, EngineConfig};
use neon_core::{CollectiveMode, CommMode, OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike,
    MemLayout, Stencil, StorageMode,
};
use neon_sys::{Backend, QueueSim, SimTime, Topology};

fn zeros(n: usize) -> Vec<SimTime> {
    vec![SimTime::ZERO; n]
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{} MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{} KiB", b >> 10)
    } else {
        format!("{b} B")
    }
}

/// One all-reduce of `bytes` on `topo` with a forced algorithm: makespan
/// plus bytes attributed to the slow host-root-complex resource.
fn collective_once(topo: &Topology, alg: Algorithm, bytes: u64) -> (SimTime, u64) {
    let n = topo.num_devices();
    let mut q = QueueSim::new(n, 1);
    let engine = CollectiveEngine::with_config(
        topo.clone(),
        EngineConfig {
            algorithm: Some(alg),
            ..EngineConfig::default()
        },
    );
    let t = engine.schedule(&mut q, CollectiveKind::AllReduce, bytes, &zeros(n), 0, "ar");
    (t.makespan(), q.counters_snapshot().slow_link_bytes)
}

struct CollectiveCell {
    shape: Vec<usize>,
    bytes: u64,
    flat: Algorithm,
    flat_us: f64,
    flat_slow: u64,
    hier_us: f64,
    hier_slow: u64,
    auto: Algorithm,
}

fn collective_sweep(shapes: &[&[usize]], sizes: &[u64]) -> Vec<CollectiveCell> {
    let mut cells = Vec::new();
    for &shape in shapes {
        let topo = Topology::nvlink_islands(shape, 1555.0);
        for &bytes in sizes {
            let flat = choose_flat(CollectiveKind::AllReduce, bytes, &topo);
            let (flat_t, flat_slow) = collective_once(&topo, flat, bytes);
            let (hier_t, hier_slow) = collective_once(&topo, Algorithm::Hierarchical, bytes);
            cells.push(CollectiveCell {
                shape: shape.to_vec(),
                bytes,
                flat,
                flat_us: flat_t.as_us(),
                flat_slow,
                hier_us: hier_t.as_us(),
                hier_slow,
                auto: choose(CollectiveKind::AllReduce, bytes, &topo),
            });
        }
    }
    cells
}

/// CG residual on an island fleet with a pinned collective algorithm —
/// the end-to-end bit-identity probe for the hierarchical schedule.
fn island_cg_residual(shape: &[usize], mode: CollectiveMode) -> f64 {
    use neon_apps::PoissonSolver;

    let backend = Backend::dgx_islands(shape);
    let ndev = backend.num_devices();
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(
        &backend,
        Dim3::new(8, 8, 4 * ndev),
        &[&st],
        StorageMode::Real,
    )
    .expect("grid");
    let options = SkeletonOptions {
        occ: OccLevel::Standard,
        collectives: mode,
        ..SkeletonOptions::default()
    };
    let mut solver = PoissonSolver::with_options(&grid, options).expect("solver");
    solver.set_rhs(|x, y, z| ((x * 7 + y * 3 + z) % 5) as f64 - 2.0);
    solver.solve_iters(4);
    solver.residual()
}

fn jacobi(g: &DenseGrid, from: &Field<f64, DenseGrid>, to: &Field<f64, DenseGrid>) -> Container {
    let (fc, tc) = (from.clone(), to.clone());
    Container::compute_opts(
        "jacobi",
        g.as_space(),
        move |ldr| {
            let fv = ldr.read_stencil(&fc);
            let tv = ldr.write(&tc);
            Box::new(move |c| {
                let mut s = 0.0;
                for slot in 0..6 {
                    s += fv.ngh(c, slot, 0);
                }
                tv.set(c, 0, 0.125 * s);
            })
        },
        7,
        1.0,
    )
}

struct ChunkRun {
    us_per_iter: f64,
    bits: Vec<u64>,
}

/// A Jacobi sweep on a PCIe box (halos cross the host root complex) with
/// the given communication mode. `functional` toggles the data path: the
/// timing sweep runs timing-only on a large grid, the bit-identity gate
/// runs functionally on a small one.
fn chunk_run(ndev: usize, dim: Dim3, comm: CommMode, iters: usize, functional: bool) -> ChunkRun {
    let backend = Backend::gv100_pcie(ndev);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, dim, &[&st], StorageMode::Real).expect("grid");
    let x = Field::<f64, _>::new(&grid, "x", 1, 0.0, MemLayout::SoA).expect("x");
    let y = Field::<f64, _>::new(&grid, "y", 1, 0.0, MemLayout::SoA).expect("y");
    if functional {
        x.fill(|a, b, c, _| ((a * 31 + b * 17 + c * 7) % 13) as f64 - 6.0);
    }
    let seq = vec![jacobi(&grid, &x, &y), ops::copy(&grid, &y, &x)];
    let mut sk = Skeleton::sequence(
        &backend,
        "repro-hier-jacobi",
        seq,
        SkeletonOptions {
            comm,
            occ: OccLevel::None,
            ..SkeletonOptions::default()
        },
    );
    sk.set_functional(functional);
    let report = sk.run_iters(iters);
    let mut bits = Vec::new();
    if functional {
        x.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    }
    ChunkRun {
        us_per_iter: report.makespan.as_us() / iters as f64,
        bits,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut fail = false;

    // ---- Part 1: hierarchical vs flat on island topologies ----
    let shapes: &[&[usize]] = &[&[1, 1], &[2, 2], &[3, 1], &[4, 4], &[6, 2], &[2, 2, 2, 2]];
    let sizes: &[u64] = &[64 << 10, 1 << 20, 16 << 20];
    println!(
        "== repro_hierarchical: all-reduce on NVLink islands (slow path = host root complex) ==\n"
    );
    let cells = collective_sweep(shapes, sizes);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                format!("{:?}", c.shape),
                fmt_bytes(c.bytes),
                format!("{} / {:.1}", c.flat, c.flat_us),
                format!("{:.1}", c.hier_us),
                format!("{:.2}", c.flat_slow as f64 / 1e6),
                format!("{:.2}", c.hier_slow as f64 / 1e6),
                format!("{}", c.auto),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "Islands",
                "Message",
                "flat pick / us",
                "hier us",
                "flat slow MB",
                "hier slow MB",
                "auto picks"
            ],
            &rows
        )
    );
    println!();

    // Gate: ≥20% makespan win + strictly fewer slow-link bytes on the
    // 2-island × 4-device cell at 16 MiB, against the flat selector's
    // own best pick.
    let gate = cells
        .iter()
        .find(|c| c.shape == [2, 2] && c.bytes == 16 << 20)
        .expect("gate cell ran");
    if gate.hier_us > 0.8 * gate.flat_us {
        eprintln!(
            "FAIL: hierarchical {:.1} us not >=20% under flat {} {:.1} us on [2,2]x16MiB",
            gate.hier_us, gate.flat, gate.flat_us
        );
        fail = true;
    }
    if gate.hier_slow >= gate.flat_slow {
        eprintln!(
            "FAIL: hierarchical slow bytes {} not strictly below flat {} on [2,2]x16MiB",
            gate.hier_slow, gate.flat_slow
        );
        fail = true;
    }
    // Gate: auto-selection routes every truly mixed shape hierarchically.
    for c in &cells {
        let mixed = c.shape.len() > 1 && c.shape.iter().any(|&s| s > 1);
        if mixed && c.auto != Algorithm::Hierarchical {
            eprintln!(
                "FAIL: auto picked {} on mixed islands {:?} at {}",
                c.auto,
                c.shape,
                fmt_bytes(c.bytes)
            );
            fail = true;
        }
    }
    // Gate: end-to-end bit-identity of the hierarchical schedule.
    for shape in [&[2usize, 2][..], &[3, 1], &[4, 4]] {
        let hier = island_cg_residual(shape, CollectiveMode::Fixed(Algorithm::Hierarchical));
        let ring = island_cg_residual(shape, CollectiveMode::Fixed(Algorithm::Ring));
        if hier.to_bits() != ring.to_bits() {
            eprintln!("FAIL: hierarchical CG residual diverges from ring on {shape:?}");
            fail = true;
        }
    }
    println!(
        "[2,2] x 16 MiB: hierarchical {:.1} us vs flat {} {:.1} us ({:.1}% win), \
         slow bytes {:.2} MB vs {:.2} MB",
        gate.hier_us,
        gate.flat,
        gate.flat_us,
        100.0 * (1.0 - gate.hier_us / gate.flat_us),
        gate.hier_slow as f64 / 1e6,
        gate.flat_slow as f64 / 1e6,
    );

    // ---- Part 2: epoch vs per-chunk event-driven halo exchange ----
    // Bit-identity on a small functional grid first.
    let id_dim = Dim3::new(16, 16, 32);
    for ndev in [2usize, 4] {
        let epoch = chunk_run(ndev, id_dim, CommMode::Epoch, 6, true);
        let chunk = chunk_run(ndev, id_dim, CommMode::ChunkEvents, 6, true);
        if epoch.bits != chunk.bits {
            eprintln!("FAIL: chunk-events diverges from epoch at {ndev} devices");
            fail = true;
        }
    }
    // Timing sweep on a halo-heavy grid (timing-only: the boundary layer
    // is ~1.1 MiB, so chunk-events streams 2 chunks per neighbor).
    let (dim, iters) = if smoke {
        (Dim3::new(192, 192, 32), 4)
    } else {
        (Dim3::new(384, 384, 32), 8)
    };
    println!(
        "\n== epoch vs chunk-events: Jacobi on a PCIe box, {}x{}x{} ==\n",
        dim.x, dim.y, dim.z
    );
    let mut chunk_rows = Vec::new();
    let mut chunk_stats: Vec<(usize, f64, f64)> = Vec::new();
    for ndev in [2usize, 4, 8] {
        let epoch = chunk_run(ndev, dim, CommMode::Epoch, iters, false);
        let chunk = chunk_run(ndev, dim, CommMode::ChunkEvents, iters, false);
        let exposed = epoch.us_per_iter - chunk.us_per_iter;
        if chunk.us_per_iter > epoch.us_per_iter * (1.0 + 1e-9) {
            eprintln!(
                "FAIL: chunk-events {:.1} us/iter loses to epoch {:.1} at {ndev} devices",
                chunk.us_per_iter, epoch.us_per_iter
            );
            fail = true;
        }
        chunk_rows.push(vec![
            format!("{ndev}"),
            format!("{:.1}", epoch.us_per_iter),
            format!("{:.1}", chunk.us_per_iter),
            format!("{:.1}", exposed),
            format!("{:.1}%", 100.0 * exposed / epoch.us_per_iter),
        ]);
        chunk_stats.push((ndev, epoch.us_per_iter, chunk.us_per_iter));
    }
    print!(
        "{}",
        render_table(
            &[
                "Devices",
                "epoch us/iter",
                "chunk-events us/iter",
                "exposed latency us",
                "hidden"
            ],
            &chunk_rows
        )
    );
    let eight = chunk_stats
        .iter()
        .find(|&&(n, _, _)| n == 8)
        .expect("8-device cell ran");
    let exposed8 = eight.1 - eight.2;
    println!(
        "\n8 devices: epoch mode exposes {exposed8:.1} us/iter of host round-trip \
         latency that chunk-events overlaps with interior compute"
    );
    if exposed8 <= 0.0 {
        eprintln!("FAIL: no exposed latency recovered at 8 devices");
        fail = true;
    }

    if fail {
        std::process::exit(1);
    }
    println!(
        "\nbit-identical (hierarchical vs ring, chunk-events vs epoch); \
         >=20% hierarchical win on [2,2]x16MiB with strictly fewer slow-link bytes; \
         auto routes mixed topologies hierarchically; chunk-events never loses"
    );

    if smoke {
        return; // CI gate only; no results file
    }

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json =
        format!("{{\"bench\":\"repro_hierarchical\",\"host_cores\":{host_cores},\"collectives\":[");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"islands\":{:?},\"bytes\":{},\"flat\":\"{}\",\"flat_us\":{:.3},\
             \"flat_slow_bytes\":{},\"hier_us\":{:.3},\"hier_slow_bytes\":{},\"auto\":\"{}\"}}",
            if i == 0 { "" } else { "," },
            c.shape,
            c.bytes,
            c.flat,
            c.flat_us,
            c.flat_slow,
            c.hier_us,
            c.hier_slow,
            c.auto,
        );
    }
    let _ = write!(
        json,
        "],\"chunk_events\":{{\"dim\":[{},{},{}],\"iters\":{iters},\"cells\":[",
        dim.x, dim.y, dim.z
    );
    for (i, &(ndev, epoch_us, chunk_us)) in chunk_stats.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"ndev\":{ndev},\"epoch_us_per_iter\":{epoch_us:.3},\
             \"chunk_us_per_iter\":{chunk_us:.3},\"exposed_us_per_iter\":{:.3}}}",
            if i == 0 { "" } else { "," },
            epoch_us - chunk_us,
        );
    }
    json.push_str("]}}");
    std::fs::create_dir_all("results").expect("results dir");
    let path = "results/BENCH_hierarchical.json";
    std::fs::write(path, &json).expect("write results JSON");
    println!("wrote {path}");
}
