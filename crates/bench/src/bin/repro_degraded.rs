//! Link fault-domain benchmark: Poisson CG under transient and permanent
//! interconnect faults, demonstrating that the wire is a recoverable
//! fault domain of its own (DESIGN.md §5):
//!
//! * **transient-link** — collective-link transients absorbed by
//!   chunk-granular retry: the residual history stays bit-identical to
//!   the clean run and the virtual-time overhead is small (≤ 10%);
//! * **link-loss / link-degrade** — a permanent wire failure mid-run:
//!   the solver aborts the iteration, flushes plans keyed on the healthy
//!   fingerprint, recompiles on the degraded topology and resumes from
//!   its checkpoint. No device is lost and the partition never changes,
//!   so recovery is *fully* bit-transparent — the entire history matches
//!   the clean run, a stronger contract than device eviction's
//!   prefix+oracle identity;
//! * **reroute-on-split** — severing the NVLink wire of a mixed
//!   (islands) fleet splits an island, and the recompiled collective
//!   schedule flips from hierarchical to flat routing. Bits still match
//!   both the clean mixed-fleet run and an oracle run started on the
//!   degraded topology;
//! * **straggler-rebalance** — on a heterogeneous box the deterministic
//!   straggler monitor (EWMA of per-device kernel spans) flags the slow
//!   device, and rebuilding the grid with the report's re-weighted
//!   shares ([`PartitionStrategy::Shares`]) shrinks its slab and the
//!   iteration makespan with it.
//!
//! Output: a table on stdout and machine-readable JSON at
//! `results/BENCH_degraded.json`.
//!
//! `--smoke` runs a small grid, asserts every gate and exits non-zero on
//! violation without touching the results file (CI hook).

use std::fmt::Write as _;
use std::time::Instant;

use neon_apps::{RecoveryReport, ResilientPoisson};
use neon_bench::render_table;
use neon_comm::{choose, Algorithm, CollectiveKind};
use neon_core::{
    FaultPlan, OccLevel, ResilienceOptions, Skeleton, SkeletonOptions, StragglerPolicy,
};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike,
    MemLayout, PartitionStrategy, ScalarSet, Stencil, StorageMode,
};
use neon_sys::{Backend, BackendKind, DeviceId, DeviceModel, Topology};

const NDEV: usize = 4;

fn options() -> SkeletonOptions {
    SkeletonOptions {
        occ: OccLevel::Standard,
        resilience: ResilienceOptions {
            enabled: true,
            checkpoint_interval: 4,
            ..ResilienceOptions::default()
        },
        ..Default::default()
    }
}

fn rhs_for(dim: usize) -> impl Fn(i32, i32, i32) -> f64 {
    move |x, y, z| {
        let c = (dim / 2) as i32;
        if x == c && y == c && z == c {
            1.0
        } else {
            0.0
        }
    }
}

struct ScenarioRun {
    label: &'static str,
    wall_ms: f64,
    virt_us: f64,
    residual_bits: Vec<u64>,
    final_residual: f64,
    injected: u64,
    recovered: u64,
    retries: u64,
    link_repairs: u64,
    evictions: u64,
    devices_end: usize,
}

/// Run `iters` CG iterations on `backend`, healing whatever `plan`
/// throws at the solver. `sever_at_start` drives the degraded-topology
/// oracle for the reroute scenario.
fn run_scenario(
    label: &'static str,
    backend: &Backend,
    dim: usize,
    iters: usize,
    plan: Option<FaultPlan>,
    sever_at_start: Option<(DeviceId, DeviceId)>,
) -> ScenarioRun {
    let mut solver = ResilientPoisson::new(backend, Dim3::cube(dim), options()).expect("solver");
    solver.set_rhs(rhs_for(dim));
    if let Some((a, b)) = sever_at_start {
        solver.sever_link(a, b).expect("voluntary sever");
    }
    if let Some(p) = plan {
        solver.install_fault_plan(p);
    }

    let mut total = RecoveryReport::default();
    let mut residual_bits = Vec::with_capacity(iters);
    let t0 = Instant::now();
    for _ in 0..iters {
        let r = solver.iterate(1).expect("iteration should heal");
        total.report.accumulate(r.report);
        total.rollbacks += r.rollbacks;
        total.replayed += r.replayed;
        total.evictions += r.evictions;
        total.link_repairs += r.link_repairs;
        residual_bits.push(solver.residual().to_bits());
    }
    let wall = t0.elapsed();

    ScenarioRun {
        label,
        wall_ms: wall.as_secs_f64() * 1e3,
        virt_us: total.report.makespan.as_us(),
        residual_bits,
        final_residual: solver.residual(),
        injected: total.report.faults_injected,
        recovered: total.report.faults_recovered,
        retries: total.report.retries,
        link_repairs: total.link_repairs,
        evictions: total.evictions,
        devices_end: solver.backend().num_devices(),
    }
}

/// The collective route a field-sized all-reduce would take on `topo` —
/// the same observable the serving layer records as a `RouteChange`.
fn route_for(dim: usize, topo: &Topology) -> Algorithm {
    let field_bytes = (dim * dim * dim) as u64 * std::mem::size_of::<f64>() as u64;
    choose(CollectiveKind::AllReduce, field_bytes, topo)
}

struct StragglerRun {
    even_virt_us: f64,
    rebal_virt_us: f64,
    stragglers: Vec<usize>,
    shares: Vec<f64>,
}

/// Heterogeneous box (three A100s + one GV100): run with even slabs and
/// the monitor on, then rebuild the grid from the report's shares and
/// measure the rebalanced makespan.
fn straggler_scenario(dim: usize, iters: usize) -> StragglerRun {
    let devices = vec![
        DeviceModel::a100_40gb(),
        DeviceModel::a100_40gb(),
        DeviceModel::a100_40gb(),
        DeviceModel::gv100(),
    ];
    let backend = Backend::new(
        BackendKind::Gpu,
        devices,
        Topology::nvlink_all_to_all(NDEV, 1555.0),
    )
    .expect("heterogeneous backend");

    let run = |strategy: PartitionStrategy| {
        let st = Stencil::seven_point();
        let grid = DenseGrid::with_partitioning(
            &backend,
            Dim3::cube(dim),
            &[&st],
            StorageMode::Real,
            strategy,
        )
        .expect("grid");
        let u = Field::<f64, _>::new(&grid, "u", 1, 0.0, MemLayout::SoA).expect("u");
        let v = Field::<f64, _>::new(&grid, "v", 1, 0.0, MemLayout::SoA).expect("v");
        let s = ScalarSet::<f64>::new(NDEV, "s", 0.0, |a, b| a + b);
        u.fill(|x, y, z, _| ((x * 31 + y * 17 + z * 7) % 23) as f64 * 0.5);
        let sten = {
            let (uc, vc) = (u.clone(), v.clone());
            Container::compute("sten", grid.as_space(), move |ldr| {
                let uv = ldr.read_stencil(&uc);
                let vv = ldr.write(&vc);
                Box::new(move |c| {
                    let mut acc = 0.0;
                    for slot in 0..6 {
                        acc += uv.ngh(c, slot, 0);
                    }
                    vv.set(c, 0, acc);
                })
            })
        };
        let relax = ops::axpy_const(&grid, 0.25, &v, &u);
        let reduce = ops::dot(&grid, &u, &v, &s);
        let mut sk = Skeleton::sequence(
            &backend,
            "straggler",
            vec![sten, relax, reduce],
            SkeletonOptions {
                occ: OccLevel::Standard,
                cache: false,
                ..Default::default()
            },
        );
        sk.enable_straggler_monitor(StragglerPolicy::default());
        let r = sk.run_iters_resilient(0, iters).expect("clean run");
        let health = sk.health_report().expect("monitor enabled");
        (r.report.makespan.as_us(), health)
    };

    let (even_virt_us, health) = run(PartitionStrategy::Even);
    let (rebal_virt_us, _) = run(PartitionStrategy::Shares(health.shares.clone()));
    StragglerRun {
        even_virt_us,
        rebal_virt_us,
        stragglers: health.stragglers.iter().map(|d| d.0).collect(),
        shares: health.shares,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (dim, iters) = if smoke { (24, 12) } else { (64, 40) };
    let fault_at = iters as u64 / 2;
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "== repro_degraded: {NDEV}-device Poisson CG at {dim}^3, {iters} iterations, \
         link faults at iteration {fault_at}, host_cores={host_cores} ==\n"
    );

    let flat = Backend::dgx_a100(NDEV);
    let clean = run_scenario("clean", &flat, dim, iters, None, None);

    // Transient tier: two collective-link faults, each recovered by one
    // chunk-granular retry within the default 3-attempt budget.
    let transient_plan = FaultPlan::none()
        .with_link_fault(2, DeviceId(1), 0, 1)
        .with_link_fault(fault_at, DeviceId(3), 1, 1);
    let transient = run_scenario(
        "transient-link",
        &flat,
        dim,
        iters,
        Some(transient_plan),
        None,
    );

    // Permanent tier on the all-NVLink box: a severed wire falls back to
    // PCIe staging, a degraded wire keeps its class at 25% bandwidth.
    let loss_plan = FaultPlan::none().with_link_loss(fault_at, DeviceId(0), DeviceId(1));
    let loss = run_scenario("link-loss", &flat, dim, iters, Some(loss_plan), None);
    let degrade_plan =
        FaultPlan::none().with_link_degrade(fault_at, DeviceId(1), DeviceId(2), 0.25);
    let degrade = run_scenario("link-degrade", &flat, dim, iters, Some(degrade_plan), None);

    // Reroute tier: a 3-device slice of a two-box fleet ({0,1} NVLink +
    // {2} across PCIe) routes hierarchically until the NVLink wire dies;
    // the recompile on the split topology must fall back to flat routing.
    let mixed = Backend::dgx_islands(&[2, 2])
        .with_devices(&[DeviceId(0), DeviceId(1), DeviceId(2)])
        .expect("mixed 3-device slice");
    let (ra, rb) = (DeviceId(0), DeviceId(1));
    let route_healthy = route_for(dim, mixed.topology());
    let route_degraded = route_for(dim, &mixed.topology().without_link(ra, rb));
    let mixed_clean = run_scenario("mixed-clean", &mixed, dim, iters, None, None);
    let reroute_plan = FaultPlan::none().with_link_loss(fault_at, ra, rb);
    let reroute = run_scenario(
        "reroute-split",
        &mixed,
        dim,
        iters,
        Some(reroute_plan),
        None,
    );
    let oracle = run_scenario("split-oracle", &mixed, dim, iters, None, Some((ra, rb)));

    let straggler = straggler_scenario(dim, iters);

    let mut rows = Vec::new();
    for r in [&clean, &transient, &loss, &degrade] {
        let overhead = (r.virt_us - clean.virt_us) / clean.virt_us * 100.0;
        rows.push(row(r, overhead));
    }
    for r in [&mixed_clean, &reroute, &oracle] {
        let overhead = (r.virt_us - mixed_clean.virt_us) / mixed_clean.virt_us * 100.0;
        rows.push(row(r, overhead));
    }
    print!(
        "{}",
        render_table(
            &[
                "Scenario",
                "Wall (ms)",
                "Virtual (us)",
                "Overhead",
                "Recovered/Injected",
                "Retries",
                "Link repairs",
                "Evictions",
                "Devices",
                "Final residual",
            ],
            &rows
        )
    );
    println!(
        "\ncollective route: healthy mixed fleet {route_healthy:?} -> severed {route_degraded:?}"
    );
    println!(
        "straggler monitor: flagged {:?}, shares {:?}, even {:.1}us -> rebalanced {:.1}us\n",
        straggler.stragglers, straggler.shares, straggler.even_virt_us, straggler.rebal_virt_us
    );

    // --- Acceptance gates -------------------------------------------------
    let mut failed = false;
    let mut gate = |ok: bool, msg: &str| {
        if ok {
            println!("PASS: {msg}");
        } else {
            eprintln!("FAIL: {msg}");
            failed = true;
        }
    };

    let overhead_transient = (transient.virt_us - clean.virt_us) / clean.virt_us * 100.0;
    gate(
        transient.residual_bits == clean.residual_bits,
        "transient link faults leave the residual history bit-identical",
    );
    gate(
        transient.injected == 2 && transient.recovered == 2 && transient.retries == 2,
        "transient scenario actually injected and recovered link faults",
    );
    gate(
        (0.0..=10.0).contains(&overhead_transient),
        "transient link-fault overhead is bounded (<= 10% virtual time)",
    );
    for (r, what) in [(&loss, "link loss"), (&degrade, "link degrade")] {
        gate(
            r.residual_bits == clean.residual_bits,
            &format!("{what} recovery is fully bit-transparent (no partition change)"),
        );
        gate(
            r.link_repairs == 1 && r.evictions == 0 && r.devices_end == NDEV,
            &format!("{what} healed by exactly one recompile, no eviction"),
        );
        gate(
            r.virt_us > clean.virt_us,
            &format!("{what} costs virtual time (degraded wire is visible)"),
        );
    }
    gate(
        route_healthy == Algorithm::Hierarchical && route_degraded != Algorithm::Hierarchical,
        "severing the island wire flips the collective route hierarchical -> flat",
    );
    gate(
        reroute.residual_bits == mixed_clean.residual_bits,
        "reroute-on-split stays bit-identical to the clean mixed-fleet run",
    );
    gate(
        reroute.residual_bits == oracle.residual_bits,
        "reroute-on-split matches the degraded-topology oracle bit-for-bit",
    );
    gate(
        reroute.link_repairs == 1 && reroute.devices_end == 3,
        "island split healed by exactly one recompile, all devices survive",
    );
    gate(
        straggler.stragglers == vec![NDEV - 1],
        "the straggler monitor flags exactly the slow device",
    );
    gate(
        straggler.shares[NDEV - 1] < 1.0,
        "the flagged device's partition share shrinks",
    );
    gate(
        straggler.rebal_virt_us < straggler.even_virt_us,
        "rebalancing on the report's shares shrinks the iteration makespan",
    );
    if failed {
        std::process::exit(1);
    }

    let overhead_loss = (loss.virt_us - clean.virt_us) / clean.virt_us * 100.0;
    let overhead_degrade = (degrade.virt_us - clean.virt_us) / clean.virt_us * 100.0;
    let overhead_reroute = (reroute.virt_us - mixed_clean.virt_us) / mixed_clean.virt_us * 100.0;
    let rebalance_gain =
        (straggler.even_virt_us - straggler.rebal_virt_us) / straggler.even_virt_us * 100.0;
    println!(
        "\nlink-fault overhead: transient {overhead_transient:+.2}%, loss \
         {overhead_loss:+.2}%, degrade {overhead_degrade:+.2}%, reroute \
         {overhead_reroute:+.2}%; straggler rebalance {rebalance_gain:+.2}% makespan"
    );

    if smoke {
        return; // CI gate: identities checked, no results file
    }

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"bench\":\"repro_degraded\",\"devices\":{NDEV},\"dim\":{dim},\
         \"iters\":{iters},\"fault_at\":{fault_at},\"host_cores\":{host_cores},\
         \"transient_overhead_pct\":{overhead_transient:.4},\
         \"loss_overhead_pct\":{overhead_loss:.4},\
         \"degrade_overhead_pct\":{overhead_degrade:.4},\
         \"reroute_overhead_pct\":{overhead_reroute:.4},\
         \"route_healthy\":\"{route_healthy:?}\",\
         \"route_degraded\":\"{route_degraded:?}\",\
         \"straggler_shares\":{:?},\
         \"rebalance_gain_pct\":{rebalance_gain:.4},\"scenarios\":[",
        straggler.shares
    );
    let baseline = |label: &str| {
        if label.starts_with("mixed") || label.contains("split") {
            &mixed_clean
        } else {
            &clean
        }
    };
    for (i, r) in [
        &clean,
        &transient,
        &loss,
        &degrade,
        &mixed_clean,
        &reroute,
        &oracle,
    ]
    .iter()
    .enumerate()
    {
        let _ = write!(
            json,
            "{}{{\"scenario\":\"{}\",\"wall_ms\":{:.3},\"virtual_us\":{:.3},\
             \"faults_injected\":{},\"faults_recovered\":{},\"retries\":{},\
             \"link_repairs\":{},\"evictions\":{},\"devices_end\":{},\
             \"final_residual\":{:.6e},\"bit_identical_to_clean\":{}}}",
            if i == 0 { "" } else { "," },
            r.label,
            r.wall_ms,
            r.virt_us,
            r.injected,
            r.recovered,
            r.retries,
            r.link_repairs,
            r.evictions,
            r.devices_end,
            r.final_residual,
            r.residual_bits == baseline(r.label).residual_bits,
        );
    }
    json.push_str("]}");
    std::fs::create_dir_all("results").expect("results dir");
    let path = "results/BENCH_degraded.json";
    std::fs::write(path, &json).expect("write results JSON");
    println!("wrote {path}");
}

fn row(r: &ScenarioRun, overhead: f64) -> Vec<String> {
    vec![
        r.label.to_string(),
        format!("{:.1}", r.wall_ms),
        format!("{:.1}", r.virt_us),
        format!("{overhead:+.1}%"),
        format!("{}/{}", r.recovered, r.injected),
        format!("{}", r.retries),
        format!("{}", r.link_repairs),
        format!("{}", r.evictions),
        format!("{}", r.devices_end),
        format!("{:.3e}", r.final_residual),
    ]
}
