//! Temporal-blocking benchmark: a Jacobi sweep (7-point stencil + pointer
//! swap) compiled with `FusionLevel::Temporal(k)` for k ∈ {2,3,4} against
//! the `Conservative` baseline, across 1/2/4/8 devices.
//!
//! What temporal blocking buys per *logical* iteration (see DESIGN.md
//! "Temporal blocking"): a super-step executes k whole iterations per
//! launch, so k kernel launches + k device syncs + k depth-1 halo rounds
//! collapse into one launch + one sync + one depth-k exchange. The price
//! is ghost-zone recompute — each device re-derives `(k-1-j)·r` shrinking
//! layers of its neighbours' cells per rep — which is nearly free on a
//! launch-bound small-to-medium grid. Results must be **bit-identical**
//! to the conservative run: the recomputed ghost values are exactly the
//! values the owning device computes.
//!
//! Reported per (devices, k) cell: virtual time per logical iteration,
//! halo rounds, redundant FLOPs (ghost recompute), launches, and
//! bit-identity against the conservative baseline at the same device
//! count. The crossover frontier — which k wins at which device count —
//! goes into the README table.
//!
//! `--smoke` runs a small grid, asserts bit-identity, the one-deep-round-
//! per-k halo accounting, and a ≥25 % 4-device win for some k, and exits
//! non-zero on violation without touching the results file (CI hook).

use std::fmt::Write as _;

use neon_bench::render_table;
use neon_core::{FusionLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike,
    MemLayout, Stencil, StorageMode,
};
use neon_sys::Backend;

/// Ghost layers stored per side: enough for k ≤ 4 at radius 1.
const HALO_CAP: usize = 4;
/// Logical iterations per configuration; divisible by every tested k.
const ITERS: usize = 12;
const KS: [u8; 3] = [2, 3, 4];

struct TemporalRun {
    ndev: usize,
    /// Super-step depth; 1 is the conservative baseline.
    k: usize,
    /// Did the temporal-fuse pass actually engage?
    engaged: bool,
    us_per_iter: f64,
    halo_rounds: u64,
    redundant_flops: u64,
    launches: u64,
    /// Bit pattern of both fields after `ITERS` logical iterations.
    bits: Vec<u64>,
}

fn stencil_sum(
    g: &DenseGrid,
    from: &Field<f64, DenseGrid>,
    to: &Field<f64, DenseGrid>,
) -> Container {
    let (fc, tc) = (from.clone(), to.clone());
    Container::compute_opts(
        "jacobi",
        g.as_space(),
        move |ldr| {
            let fv = ldr.read_stencil(&fc);
            let tv = ldr.write(&tc);
            Box::new(move |c| {
                let mut s = 0.0;
                for slot in 0..6 {
                    s += fv.ngh(c, slot, 0);
                }
                tv.set(c, 0, 0.125 * s);
            })
        },
        // 6 neighbour adds + 1 scale per cell: the virtual-clock FLOP
        // model and the redundant-recompute meter need a nonzero rate.
        7,
        1.0,
    )
}

fn run_config(ndev: usize, dim: Dim3, fusion: FusionLevel, k: usize) -> TemporalRun {
    let backend = Backend::dgx_a100(ndev);
    let st = Stencil::seven_point();
    let grid = DenseGrid::with_halo_capacity(&backend, dim, &[&st], StorageMode::Real, HALO_CAP)
        .expect("grid");
    let x = Field::<f64, _>::new(&grid, "x", 1, 0.0, MemLayout::SoA).expect("x");
    let y = Field::<f64, _>::new(&grid, "y", 1, 0.0, MemLayout::SoA).expect("y");
    x.fill(|a, b, c, _| ((a * 31 + b * 17 + c * 7) % 13) as f64 - 6.0);

    let seq = vec![stencil_sum(&grid, &x, &y), ops::copy(&grid, &y, &x)];
    let mut sk = Skeleton::sequence(
        &backend,
        "repro-temporal",
        seq,
        SkeletonOptions {
            fusion,
            ..Default::default()
        },
    );
    let ipe = sk.logical_iters_per_execution();
    assert_eq!(ITERS % ipe, 0, "iteration count must divide the step depth");
    let report = sk.run_iters(ITERS / ipe);

    let mut bits = Vec::new();
    x.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    y.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    TemporalRun {
        ndev,
        k,
        engaged: ipe > 1,
        us_per_iter: report.makespan.as_us() / ITERS as f64,
        halo_rounds: report.halo_rounds,
        redundant_flops: report.redundant_flops,
        launches: report.launches,
        bits,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (dim, ndevs): (Dim3, &[usize]) = if smoke {
        (Dim3::new(16, 16, 32), &[1, 2, 4])
    } else {
        (Dim3::new(64, 64, 64), &[1, 2, 4, 8])
    };
    println!(
        "== repro_temporal: Jacobi sweep at {}x{}x{}, {ITERS} logical iterations, \
         halo capacity {HALO_CAP} ==\n",
        dim.x, dim.y, dim.z
    );

    let mut runs: Vec<TemporalRun> = Vec::new();
    for &ndev in ndevs {
        runs.push(run_config(ndev, dim, FusionLevel::Conservative, 1));
        for &k in &KS {
            runs.push(run_config(ndev, dim, FusionLevel::Temporal(k), k as usize));
        }
    }

    // Gates: every temporal run is bit-identical to the conservative run
    // at the same device count; an engaged super-step executes exactly
    // one deep round per k iterations; some k beats conservative by ≥25%
    // of virtual wall clock at 4 devices.
    let mut rows = Vec::new();
    let mut fail = false;
    let mut crossover: Vec<(usize, usize, f64)> = Vec::new();
    for &ndev in ndevs {
        let cons = runs
            .iter()
            .find(|r| r.ndev == ndev && r.k == 1)
            .expect("baseline ran");
        let mut best: Option<(usize, f64)> = None;
        for r in runs.iter().filter(|r| r.ndev == ndev) {
            let identical = r.bits == cons.bits;
            if !identical {
                eprintln!(
                    "FAIL: k={} diverges from conservative at {ndev} devices",
                    r.k
                );
                fail = true;
            }
            if r.k > 1 && !r.engaged {
                eprintln!(
                    "FAIL: super-step k={} did not engage at {ndev} devices",
                    r.k
                );
                fail = true;
            }
            if r.engaged && ndev >= 2 {
                let expect = (ITERS / r.k) as u64;
                if r.halo_rounds != expect || cons.halo_rounds != ITERS as u64 {
                    eprintln!(
                        "FAIL: halo accounting at {ndev} devices k={}: {} rounds (want {expect}), \
                         conservative {} (want {ITERS})",
                        r.k, r.halo_rounds, cons.halo_rounds
                    );
                    fail = true;
                }
            }
            let speedup = cons.us_per_iter / r.us_per_iter;
            if r.k > 1 && (best.is_none() || speedup > best.unwrap().1) {
                best = Some((r.k, speedup));
            }
            rows.push(vec![
                format!("{}", ndev),
                if r.k == 1 {
                    "cons".into()
                } else {
                    format!("k={}", r.k)
                },
                format!("{:.2}", r.us_per_iter),
                format!("{:.2}x", speedup),
                format!("{}", r.halo_rounds),
                format!("{}", r.launches),
                format!("{:.2}", r.redundant_flops as f64 / 1e6),
                if identical { "yes".into() } else { "NO".into() },
            ]);
        }
        let (bk, bs) = best.expect("temporal runs exist");
        crossover.push((ndev, bk, bs));
    }
    print!(
        "{}",
        render_table(
            &[
                "Devices",
                "Fusion",
                "us/iter",
                "Speedup",
                "Halo rounds",
                "Launches",
                "Ghost MFLOPs",
                "Bit-identical"
            ],
            &rows
        )
    );
    println!();
    for &(ndev, bk, bs) in &crossover {
        println!("{ndev} device(s): best k={bk} at {bs:.2}x over conservative");
    }

    let four = crossover
        .iter()
        .find(|&&(n, _, _)| n == 4)
        .expect("4-device cell ran");
    if four.2 < 1.0 / 0.75 {
        eprintln!(
            "FAIL: best 4-device temporal win is {:.2}x (< {:.2}x, the 25% wall-clock gate)",
            four.2,
            1.0 / 0.75
        );
        fail = true;
    }
    if fail {
        std::process::exit(1);
    }
    println!("bit-identical, halo accounting exact, 4-device win >= 25%");

    if smoke {
        return; // CI gate: identity + accounting + win checked, no results file
    }

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"bench\":\"repro_temporal\",\"dim\":[{},{},{}],\"iters\":{ITERS},\
         \"halo_cap\":{HALO_CAP},\"configs\":[",
        dim.x, dim.y, dim.z
    );
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"ndev\":{},\"k\":{},\"engaged\":{},\"us_per_iter\":{:.4},\
             \"halo_rounds\":{},\"launches\":{},\"redundant_flops\":{}}}",
            if i == 0 { "" } else { "," },
            r.ndev,
            r.k,
            r.engaged,
            r.us_per_iter,
            r.halo_rounds,
            r.launches,
            r.redundant_flops,
        );
    }
    json.push_str("],\"crossover\":[");
    for (i, &(ndev, bk, bs)) in crossover.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"ndev\":{ndev},\"best_k\":{bk},\"speedup\":{bs:.4}}}",
            if i == 0 { "" } else { "," },
        );
    }
    json.push_str("]}");
    std::fs::create_dir_all("results").expect("results dir");
    let path = "results/BENCH_temporal.json";
    std::fs::write(path, &json).expect("write results JSON");
    println!("wrote {path}");
}
