//! Reproduces **Table II** of the paper: single-GPU D3Q19 lid-driven
//! cavity MLUPS — Neon twoPop vs the native-CUDA `cuboltz` benchmark and
//! the three `stlbm` C++17-parallel-algorithm variants, on one A100.
//!
//! Neon's number comes from running the cavity skeleton on the virtual
//! clock; the comparators are analytic models under the same device model
//! (DESIGN.md §2).

use neon_apps::lbm::{mlups, AnalyticLbm};
use neon_bench::{lbm_cavity_iter_time, render_table};
use neon_core::OccLevel;
use neon_sys::Backend;

fn main() {
    const N: usize = 256;
    const ITERS: usize = 10;
    let backend = Backend::dgx_a100(1);
    let device = backend.device(neon_sys::DeviceId(0)).clone();
    let cells = (N * N * N) as u64;

    let t_neon = lbm_cavity_iter_time(&backend, N, OccLevel::None, ITERS);
    let neon_mlups = mlups(cells, 1, t_neon.as_us());

    let comparators = [
        AnalyticLbm::cuboltz(),
        AnalyticLbm::stlbm_aa(),
        AnalyticLbm::stlbm_two_pop(),
        AnalyticLbm::stlbm_swap(),
    ];

    println!("== Table II: D3Q19 lid-driven cavity, {N}^3, 1x A100 ==\n");
    let mut rows = vec![vec![
        "Neon twoPop".to_string(),
        format!("{neon_mlups:.1}"),
        "1.000".to_string(),
    ]];
    for c in &comparators {
        let m = c.mlups(&device, cells);
        rows.push(vec![
            c.name.to_string(),
            format!("{m:.1}"),
            format!("{:.3}", neon_mlups / m),
        ]);
    }
    print!(
        "{}",
        render_table(&["Implementation", "MLUPS", "Neon / impl"], &rows)
    );
    println!(
        "\npaper's shape: Neon within 1% of cuboltz, above both stlbm AA\n\
         and twoPop (and swap); same user code runs multi-GPU unchanged."
    );
}
