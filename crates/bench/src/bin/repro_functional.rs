//! Wall-clock benchmark of the functional executor modes (not the
//! virtual clock): 4-device Poisson CG at 64³, run three ways —
//!
//! * `serial` — the reference walk, tasks strictly in order on one
//!   thread;
//! * `spawn` — the historical per-launch `thread::scope` (a spawn/join
//!   round trip per kernel launch, no cross-task overlap);
//! * `parallel` — the event-driven replay on the persistent per-device
//!   worker pool walking the compiled device plan.
//!
//! All three must produce **bit-identical** residual histories — the
//! event table only admits orderings the data dependencies allow, and
//! every cross-device fold runs in canonical rank order. The speedup is
//! whatever the host actually delivers: on a multi-core host the
//! parallel replay overlaps the per-device kernel walks; on a single
//! hardware thread (CI containers) it can't beat serial, which is why
//! `host_cores` is recorded next to every number.
//!
//! Output: a table on stdout and machine-readable JSON at
//! `results/BENCH_functional.json`.
//!
//! `--smoke` runs a small grid, asserts bit-identity and exits non-zero
//! on divergence without touching the results file (CI hook).

use std::fmt::Write as _;
use std::time::Instant;

use neon_apps::PoissonSolver;
use neon_bench::render_table;
use neon_core::{FunctionalMode, OccLevel, SkeletonOptions};
use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
use neon_sys::Backend;

const NDEV: usize = 4;

#[derive(Clone)]
struct ModeRun {
    label: &'static str,
    wall_ms: f64,
    mlups: f64,
    /// Bit pattern of ‖r‖² after every iteration.
    residual_bits: Vec<u64>,
    /// Residual after the last iteration (human-readable counterpart).
    final_residual: f64,
}

fn merge_best(best: &mut Option<ModeRun>, run: ModeRun) {
    match best {
        Some(b) => {
            assert_eq!(
                b.residual_bits, run.residual_bits,
                "{}: residuals differ between repeats",
                run.label
            );
            if run.wall_ms < b.wall_ms {
                b.wall_ms = run.wall_ms;
                b.mlups = run.mlups;
            }
        }
        None => *best = Some(run),
    }
}

fn run_mode(mode: FunctionalMode, label: &'static str, dim: usize, iters: usize) -> ModeRun {
    let backend = Backend::dgx_a100(NDEV);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(
        &backend,
        Dim3::new(dim, dim, dim),
        &[&st],
        StorageMode::Real,
    )
    .expect("grid");
    let mut solver = PoissonSolver::with_options(
        &grid,
        SkeletonOptions {
            occ: OccLevel::Standard,
            functional_mode: mode,
            // This bench compares executor modes on the unfused program
            // (the checked-in numbers predate fusion); `repro_fusion`
            // owns the fused-vs-unfused comparison.
            fusion: neon_core::FusionLevel::Off,
            ..Default::default()
        },
    )
    .expect("solver");
    solver.set_rhs(|x, y, z| {
        // A localized source away from the boundary.
        let c = (dim / 2) as i32;
        if x == c && y == c && z == c {
            1.0
        } else {
            0.0
        }
    });

    // Warm up: spawns the worker pool (parallel mode), faults in the
    // partitions, and takes first-touch costs out of the measured window.
    solver.solve_iters(3);
    solver.set_rhs(|x, y, z| {
        let c = (dim / 2) as i32;
        if x == c && y == c && z == c {
            1.0
        } else {
            0.0
        }
    });

    let mut residual_bits = Vec::with_capacity(iters);
    let t0 = Instant::now();
    for _ in 0..iters {
        solver.solve_iters(1);
        // rs_old holds ‖r‖² of the iteration that just completed.
        residual_bits.push(solver.cg.state.rs_old.host_value().to_bits());
    }
    let wall = t0.elapsed();

    let cells = (dim * dim * dim) as f64;
    let wall_s = wall.as_secs_f64();
    ModeRun {
        label,
        wall_ms: wall_s * 1e3,
        mlups: cells * iters as f64 / wall_s / 1e6,
        residual_bits,
        final_residual: solver.residual(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (dim, iters) = if smoke { (16, 8) } else { (64, 40) };
    let host_cores = neon_sys::host_cores();

    println!(
        "== repro_functional: {NDEV}-device Poisson CG at {dim}^3, {iters} iterations, \
         host_cores={host_cores} ==\n"
    );

    // Interleaved best-of-N: a fresh process warms its page cache and
    // allocator arenas on whichever configuration runs first, which
    // (measured here) inflates later runs by up to ~1.5× relative to the
    // first. Repeating the whole ladder and keeping each mode's best
    // removes that order effect.
    // In smoke mode the perf gate below only fires on ≥ 4 cores; give it
    // one extra repeat there so a single scheduler hiccup can't fail CI.
    let repeats = if !smoke {
        3
    } else if host_cores >= 4 {
        2
    } else {
        1
    };
    let (mut serial, mut spawn, mut parallel) = (None, None, None);
    for _ in 0..repeats {
        merge_best(
            &mut serial,
            run_mode(FunctionalMode::Serial, "serial", dim, iters),
        );
        merge_best(
            &mut spawn,
            run_mode(FunctionalMode::SpawnPerLaunch, "spawn", dim, iters),
        );
        merge_best(
            &mut parallel,
            run_mode(FunctionalMode::Parallel, "parallel", dim, iters),
        );
    }
    let runs = [serial.unwrap(), spawn.unwrap(), parallel.unwrap()];

    let serial = &runs[0];
    let mut rows = Vec::new();
    let mut identical = true;
    for r in &runs {
        let bitwise = r.residual_bits == serial.residual_bits;
        identical &= bitwise;
        rows.push(vec![
            r.label.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.1}", r.mlups),
            format!("{:.3}", serial.wall_ms / r.wall_ms),
            format!("{:.3e}", r.final_residual),
            if bitwise { "yes".into() } else { "NO".into() },
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "Mode",
                "Wall (ms)",
                "MLUPS",
                "Speedup vs serial",
                "Final residual",
                "Bit-identical"
            ],
            &rows
        )
    );
    println!();

    if !identical {
        eprintln!("FAIL: functional modes diverge from the serial reference");
        std::process::exit(1);
    }
    println!("all modes bit-identical to the serial reference");

    if smoke {
        // Perf gate, multi-core hosts only: with enough cores to run all
        // device workers concurrently, the parallel replay must at least
        // match the serial walk. On fewer cores the replay cannot beat
        // serial (the workers time-slice one another), so the gate would
        // only measure the CI container — skip it there, loudly.
        let parallel = &runs[2];
        if host_cores >= 4 {
            let speedup = serial.wall_ms / parallel.wall_ms;
            if speedup < 1.0 {
                eprintln!(
                    "FAIL: parallel replay slower than serial on a \
                     {host_cores}-core host ({speedup:.3}x)"
                );
                std::process::exit(1);
            }
            println!("parallel speedup gate passed: {speedup:.3}x (>= 1.0x)");
        } else {
            println!("parallel speedup gate skipped: host_cores={host_cores} < 4");
        }
        return; // CI gate: identity (and perf, above) checked, no results file
    }

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"bench\":\"repro_functional\",\"devices\":{NDEV},\"dim\":{dim},\
         \"iters\":{iters},\"host_cores\":{host_cores},\"bit_identical\":{identical},\
         \"modes\":["
    );
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"mode\":\"{}\",\"wall_ms\":{:.3},\"mlups\":{:.3},\
             \"speedup_vs_serial\":{:.4},\"final_residual\":{:.6e}}}",
            if i == 0 { "" } else { "," },
            r.label,
            r.wall_ms,
            r.mlups,
            serial.wall_ms / r.wall_ms,
            r.final_residual,
        );
    }
    json.push_str("]}");
    std::fs::create_dir_all("results").expect("results dir");
    let path = "results/BENCH_functional.json";
    std::fs::write(path, &json).expect("write results JSON");
    println!("wrote {path}");
}
