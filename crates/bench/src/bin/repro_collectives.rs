//! Collective-communication sweep: all-reduce makespan for every
//! algorithm (host-staged / ring / tree) across message sizes, device
//! counts and both interconnect classes (DGX-A100 NVLink all-to-all vs a
//! PCIe box staging through the host root complex).
//!
//! Also demonstrates:
//! * the automatic algorithm selection (what `Auto` would pick per cell),
//! * the shared-link contention model — two simultaneous PCIe peer
//!   transfers through the host root complex take measurably longer than
//!   the same two transfers serialized,
//! * an ASCII timeline of ring vs host-staged on 8 NVLink devices.
//!
//! Output: a table per topology on stdout and machine-readable JSON at
//! `results/repro_collectives.json`.

use std::fmt::Write as _;

use neon_bench::render_table;
use neon_comm::{choose, Algorithm, CollectiveEngine, CollectiveKind, EngineConfig};
use neon_sys::{DeviceId, QueueSim, SimTime, SpanKind, StreamId, Topology};

fn zeros(n: usize) -> Vec<SimTime> {
    vec![SimTime::ZERO; n]
}

/// Makespan of one all-reduce of `bytes` over `topo` with a forced
/// algorithm; also returns total contention events across links.
fn run_once(topo: &Topology, alg: Algorithm, bytes: u64) -> (SimTime, u64) {
    let n = topo.num_devices();
    let mut q = QueueSim::new(n, 1);
    let engine = CollectiveEngine::with_config(
        topo.clone(),
        EngineConfig {
            algorithm: Some(alg),
            ..EngineConfig::default()
        },
    );
    let t = engine.schedule(&mut q, CollectiveKind::AllReduce, bytes, &zeros(n), 0, "ar");
    let contended: u64 = (0..q.num_link_resources())
        .map(|r| q.link_contention_events(r))
        .sum();
    (t.makespan(), contended)
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{} MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{} KiB", b >> 10)
    } else {
        format!("{b} B")
    }
}

fn sweep(label: &str, make_topo: &dyn Fn(usize) -> Topology, json: &mut String) {
    println!("== {label}: all-reduce makespan (us) ==\n");
    let sizes: &[u64] = &[8, 1 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20];
    let mut rows = Vec::new();
    for &ndev in &[2usize, 4, 8] {
        let topo = make_topo(ndev);
        for &bytes in sizes {
            let (host, _) = run_once(&topo, Algorithm::HostStaged, bytes);
            let (ring, _) = run_once(&topo, Algorithm::Ring, bytes);
            let (tree, _) = run_once(&topo, Algorithm::Tree, bytes);
            let auto = choose(CollectiveKind::AllReduce, bytes, &topo);
            rows.push(vec![
                format!("{ndev}"),
                fmt_bytes(bytes),
                format!("{:.1}", host.as_us()),
                format!("{:.1}", ring.as_us()),
                format!("{:.1}", tree.as_us()),
                format!("{auto}"),
            ]);
            let _ = write!(
                json,
                "{}{{\"topology\":\"{label}\",\"devices\":{ndev},\"bytes\":{bytes},\
                 \"host_staged_us\":{:.3},\"ring_us\":{:.3},\"tree_us\":{:.3},\
                 \"auto\":\"{auto}\"}}",
                if json.ends_with('[') { "" } else { "," },
                host.as_us(),
                ring.as_us(),
                tree.as_us(),
            );
        }
    }
    print!(
        "{}",
        render_table(
            &[
                "Devices",
                "Message",
                "host-staged",
                "ring",
                "tree",
                "auto picks"
            ],
            &rows
        )
    );
    println!();
}

/// Contention demo: two simultaneous PCIe peer transfers must serialize
/// through the host root complex (plus an arbitration penalty), so they
/// finish later than back-to-back transfers on one stream.
fn contention_demo() {
    println!("== Shared-link contention: PCIe host root complex ==\n");
    let topo = Topology::pcie_host_staged(4, 870.0);
    let bytes = 1u64 << 20;
    let dur = topo.transfer_time(DeviceId(0), DeviceId(1), bytes);

    // Simultaneous: two different devices issue at t=0; same physical link.
    let mut q = QueueSim::new(4, 1);
    let res = topo.link_resources(DeviceId(0), DeviceId(1)).to_vec();
    q.enqueue_transfer(
        StreamId::new(DeviceId(0), 0),
        SimTime::ZERO,
        dur,
        &res,
        "a",
        SpanKind::Transfer,
    );
    let res2 = topo.link_resources(DeviceId(2), DeviceId(3)).to_vec();
    q.enqueue_transfer(
        StreamId::new(DeviceId(2), 0),
        SimTime::ZERO,
        dur,
        &res2,
        "b",
        SpanKind::Transfer,
    );
    let simultaneous = q.makespan();
    let contended: u64 = (0..q.num_link_resources())
        .map(|r| q.link_contention_events(r))
        .sum();

    // Serialized: same two transfers, one stream, back to back.
    let mut q2 = QueueSim::new(4, 1);
    q2.enqueue_transfer(
        StreamId::new(DeviceId(0), 0),
        SimTime::ZERO,
        dur,
        &res,
        "a",
        SpanKind::Transfer,
    );
    q2.enqueue_transfer(
        StreamId::new(DeviceId(0), 0),
        SimTime::ZERO,
        dur,
        &res2,
        "b",
        SpanKind::Transfer,
    );
    let serialized = q2.makespan();

    println!(
        "transfer duration (1 MiB over PCIe3): {:.1} us",
        dur.as_us()
    );
    println!(
        "two simultaneous peer transfers : {:.1} us  ({contended} contention event(s))",
        simultaneous.as_us()
    );
    println!(
        "same two, serialized on 1 stream: {:.1} us",
        serialized.as_us()
    );
    println!(
        "=> contention adds {:.1} us of arbitration on top of full serialization\n",
        (simultaneous - serialized).as_us()
    );
    assert!(
        simultaneous > serialized,
        "contention model must make simultaneous transfers slower"
    );
}

/// ASCII timeline: ring vs host-staged all-reduce, 8 NVLink devices.
fn timeline_demo(json: &mut String) {
    println!("== Timeline: 1 MiB all-reduce on 8x A100 (NVLink) ==");
    let topo = Topology::nvlink_all_to_all(8, 1555.0);
    for alg in [Algorithm::Ring, Algorithm::HostStaged] {
        let mut q = QueueSim::new(8, 1);
        q.enable_trace();
        let engine = CollectiveEngine::with_config(
            topo.clone(),
            EngineConfig {
                algorithm: Some(alg),
                ..EngineConfig::default()
            },
        );
        let t = engine.schedule(
            &mut q,
            CollectiveKind::AllReduce,
            1 << 20,
            &zeros(8),
            0,
            "ar",
        );
        println!("\n-- {alg} ({:.1} us) --", t.makespan().as_us());
        if let Some(trace) = q.trace() {
            print!("{}", trace.ascii_timeline(72));
        }
        let _ = write!(
            json,
            ",{{\"timeline\":\"{alg}\",\"bytes\":1048576,\"devices\":8,\
             \"makespan_us\":{:.3}}}",
            t.makespan().as_us()
        );
    }
    println!();
}

fn main() {
    // Virtual-clock numbers don't depend on the host, but every results
    // file records the host anyway so wall-clock-bearing files are never
    // the odd ones out (and host-sensitive regressions are diagnosable).
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json =
        format!("{{\"bench\":\"repro_collectives\",\"host_cores\":{host_cores},\"results\":[");
    sweep(
        "DGX-A100 (NVLink all-to-all)",
        &|n| Topology::nvlink_all_to_all(n, 1555.0),
        &mut json,
    );
    sweep(
        "PCIe box (host root complex)",
        &|n| Topology::pcie_host_staged(n, 870.0),
        &mut json,
    );
    contention_demo();
    timeline_demo(&mut json);
    json.push_str("]}");

    let path = "results/repro_collectives.json";
    std::fs::create_dir_all("results").ok();
    std::fs::write(path, &json).expect("write results JSON");
    println!("wrote {path}");

    println!(
        "\nexpected shape: NVLink favors tree at small messages (latency-\n\
         bound) and ring at large ones (bandwidth-optimal, 2(n-1) shard\n\
         steps); on the PCIe box every peer algorithm serializes through\n\
         the host root complex, so host staging stays competitive and the\n\
         selector falls back to it."
    );
}
