//! Reproduces **Fig. 1** of the paper: the execution timeline of a map
//! followed by a stencil on two GPUs, at three optimization levels —
//! (a) no OCC (global synchronization before the halo update),
//! (b) Standard OCC (internal stencil overlaps the transfer),
//! (c) Extended OCC (the map is split too; the transfer starts right
//!     after the boundary map).
//!
//! Prints ASCII timelines from the virtual-clock trace, plus the
//! makespans showing (a) > (b) > (c).

use neon_core::{OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    Cell, Container, DenseGrid, Dim3, Field, FieldRead as _, FieldStencil as _, FieldWrite as _,
    GridLike, MemLayout, Stencil, StorageMode,
};
use neon_sys::Backend;

fn build(occ: OccLevel) -> Skeleton {
    // The PCIe-class system: communication is expensive enough that the
    // schematic's three levels separate visibly (on NVLink the transfer
    // is a sliver and all three timelines nearly coincide).
    let backend = Backend::gv100_pcie(2);
    let st = Stencil::seven_point();
    // A deliberately communication-heavy configuration so the overlap is
    // visible: wide slabs, 8 components.
    let g = DenseGrid::new(
        &backend,
        Dim3::new(256, 256, 64),
        &[&st],
        StorageMode::Virtual,
    )
    .expect("grid");
    let x = Field::<f64, _>::new(&g, "X", 8, 0.0, MemLayout::SoA).expect("field");
    let y = Field::<f64, _>::new(&g, "Y", 8, 0.0, MemLayout::SoA).expect("field");

    // Map: X ← 2·X + 1 (the paper's AXPY-like green kernel).
    let map = {
        let xc = x.clone();
        Container::compute("map", g.as_space(), move |ldr| {
            let xv = ldr.read_write(&xc);
            Box::new(move |c: Cell| {
                for k in 0..8 {
                    xv.set(c, k, 2.0 * xv.at(c, k) + 1.0);
                }
            })
        })
    };
    // Stencil: Y ← Laplacian-ish filter of X (the purple kernel).
    let stencil = {
        let (xc, yc) = (x.clone(), y.clone());
        Container::compute("stn", g.as_space(), move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |c: Cell| {
                for k in 0..8 {
                    let mut s = 0.0;
                    for slot in 0..6 {
                        s += xv.ngh(c, slot, k);
                    }
                    yv.set(c, k, s - 6.0 * xv.at(c, k));
                }
            })
        })
    };

    let mut opts = SkeletonOptions::with_occ(occ);
    opts.trace = true;
    Skeleton::sequence(&backend, "fig1", vec![map, stencil], opts)
}

fn main() {
    println!("== Fig. 1: map + stencil on 2 GPUs, three optimization levels ==");
    println!("   legend: kernel spans show their first letter (m=map, s=stencil,");
    println!("   with .int/.bnd splits), '~' = halo transfer, lanes are (device, stream)\n");
    let mut makespans = Vec::new();
    for (label, occ) in [
        ("(a) no OCC", OccLevel::None),
        ("(b) standard OCC", OccLevel::Standard),
        ("(c) extended OCC", OccLevel::Extended),
    ] {
        let mut sk = build(occ);
        let report = sk.run();
        let trace = sk.take_trace().expect("trace enabled");
        println!("--- {label}: makespan {} ---", report.makespan);
        print!("{}", trace.ascii_timeline(72));
        println!();
        makespans.push((label, report.makespan));
    }
    println!("makespan summary:");
    for (label, t) in &makespans {
        println!("  {label:<20} {t}");
    }
    let a = makespans[0].1;
    let b = makespans[1].1;
    let c = makespans[2].1;
    println!(
        "\nspeedup over (a): (b) {:.3}x, (c) {:.3}x",
        a.as_us() / b.as_us(),
        a.as_us() / c.as_us()
    );
}
