//! Shared harness utilities for the paper-reproduction benchmarks.
//!
//! Every table and figure of the paper's evaluation (§VI) has a
//! `repro_*` binary in `src/bin/` that regenerates it; this library holds
//! the common pieces: timing-only application runners over large virtual
//! domains, the analytic CUDA+cuBLAS Poisson baseline, efficiency
//! arithmetic, and plain-text table rendering.

use neon_core::OccLevel;
use neon_domain::{DenseGrid, Dim3, SparseGrid, Stencil, StorageMode};
use neon_sys::{Backend, BackendKind, DeviceModel, LinkModel, Result, SimTime, Topology};

use neon_apps::fem::{ElasticitySolver, Material};
use neon_apps::lbm::{LbmParams, LidDrivenCavity};
use neon_apps::PoissonSolver;

/// Parallel efficiency as the paper defines it:
/// `Efficiency(n) = t_baseline / (n · t_n)`.
pub fn efficiency(t_baseline: SimTime, n: usize, t_n: SimTime) -> f64 {
    t_baseline.as_us() / (n as f64 * t_n.as_us())
}

/// A DGX-A100-class backend with a custom inter-device link (used for the
/// "infinitely fast interconnect" reference that isolates communication
/// cost, and for NVLink/PCIe ablations).
pub fn a100_backend_with_link(n: usize, link: LinkModel) -> Backend {
    let dev = DeviceModel::a100_40gb();
    let local = dev.mem_bandwidth_gb_s;
    Backend::new(
        BackendKind::Gpu,
        vec![dev; n],
        Topology::from_fn(n, move |s, d| {
            if s == d {
                LinkModel::local(local)
            } else {
                link
            }
        }),
    )
    .expect("valid backend")
}

/// An idealized link: effectively free communication.
pub fn infinite_link() -> LinkModel {
    LinkModel {
        kind: neon_sys::LinkKind::NvLink,
        latency_us: 0.0,
        bandwidth_gb_s: 1e9,
    }
}

/// Per-iteration virtual time of the D3Q19 twoPop cavity on a virtual
/// (timing-only) dense grid.
pub fn lbm_cavity_iter_time(backend: &Backend, n: usize, occ: OccLevel, iters: usize) -> SimTime {
    let st = Stencil::d3q19();
    let g = DenseGrid::new(backend, Dim3::cube(n), &[&st], StorageMode::Virtual)
        .expect("grid construction");
    let mut app = LidDrivenCavity::new(&g, LbmParams::default(), occ).expect("field allocation");
    app.init();
    // Meter only the measured window with snapshot deltas — the queue
    // counters are cumulative and shared, so a global reset here would
    // clobber any other user of the same simulators (the serving layer
    // accounts per-tenant exactly this way).
    let before = app.counters_snapshot();
    let r = app.step(iters);
    let window = app.counters_snapshot() - before;
    debug_assert_eq!(window.kernel_launches, r.launches);
    r.time_per_execution()
}

/// Per-iteration virtual time of the Poisson CG solver on a virtual grid.
pub fn poisson_iter_time(backend: &Backend, n: usize, occ: OccLevel, iters: usize) -> SimTime {
    let st = Stencil::seven_point();
    let g = DenseGrid::new(backend, Dim3::cube(n), &[&st], StorageMode::Virtual)
        .expect("grid construction");
    let mut solver = PoissonSolver::new(&g, occ).expect("field allocation");
    solver.solve_iters(iters).time_per_execution()
}

/// Compile-vs-run split of the Poisson CG solver: returns the compile
/// wall-clock time, the per-iteration virtual run time, and whether the
/// iteration plan came from the process-wide plan cache. Building the
/// same configuration twice demonstrates the cache: the second call
/// reports zero compile time and a hit — even for a different grid size,
/// since the plan key is structural.
pub fn poisson_compile_run_split(
    backend: &Backend,
    n: usize,
    occ: OccLevel,
    iters: usize,
) -> (SimTime, SimTime, bool) {
    let st = Stencil::seven_point();
    let g = DenseGrid::new(backend, Dim3::cube(n), &[&st], StorageMode::Virtual)
        .expect("grid construction");
    let mut solver = PoissonSolver::new(&g, occ).expect("field allocation");
    let stats = solver.cg.compile_stats();
    let t = solver.solve_iters(iters).time_per_execution();
    (stats.compile_time, t, stats.iter_from_cache)
}

/// Per-iteration virtual time of the FEM elasticity CG on a dense grid.
/// Returns `Err` on simulated OOM.
pub fn fem_dense_iter_time(
    backend: &Backend,
    n: usize,
    occ: OccLevel,
    iters: usize,
) -> Result<SimTime> {
    let st = Stencil::twenty_seven_point();
    let g = DenseGrid::new(backend, Dim3::cube(n), &[&st], StorageMode::Virtual)?;
    let mut solver = ElasticitySolver::new(&g, Material::default(), Default::default(), occ)?;
    Ok(solver.solve_iters(iters).time_per_execution())
}

/// Per-iteration virtual time of the FEM elasticity CG on an element-
/// sparse grid whose active region is a centred solid cube occupying
/// `ratio` of the domain volume. Returns `Err` on simulated OOM.
pub fn fem_sparse_iter_time(
    backend: &Backend,
    n: usize,
    ratio: f64,
    occ: OccLevel,
    iters: usize,
) -> Result<SimTime> {
    let g = sparse_cube_grid(backend, n, ratio, StorageMode::Virtual)?;
    let mut solver = ElasticitySolver::new(&g, Material::default(), Default::default(), occ)?;
    Ok(solver.solve_iters(iters).time_per_execution())
}

/// An element-sparse grid whose active cells form a centred cube with
/// volume fraction `ratio` of the `n³` domain.
pub fn sparse_cube_grid(
    backend: &Backend,
    n: usize,
    ratio: f64,
    mode: StorageMode,
) -> Result<SparseGrid> {
    let side = (n as f64 * ratio.cbrt()).round().max(2.0) as i32;
    let lo_xy = ((n as i32) - side) / 2;
    let hi_xy = lo_xy + side;
    let inside = move |v: i32| v >= lo_xy && v < hi_xy;
    // Anchor the cube at z = 0 so the Dirichlet plane exists, extend to
    // `side` layers; every device must own at least one layer, so the
    // mask spans all z for very low ratios via a thin column fallback.
    let st = Stencil::twenty_seven_point();
    SparseGrid::new(
        backend,
        Dim3::cube(n),
        &[&st],
        move |x, y, z| inside(x) && inside(y) && z < side.max(backend_num(backend) as i32),
        mode,
    )
}

fn backend_num(b: &Backend) -> usize {
    b.num_devices()
}

/// Device memory a FEM solve needs per device, in bytes: the maximum over
/// devices of fields + (for sparse) connectivity/coordinates — measured
/// from the ledgers after allocation.
pub fn peak_device_demand(backend: &Backend) -> u64 {
    (0..backend.num_devices())
        .map(|d| backend.ledger(neon_sys::DeviceId(d)).peak())
        .max()
        .unwrap_or(0)
}

/// The paper's hand-tuned CUDA+cuBLAS Poisson baseline on one GPU:
/// UpdateP, unguarded 7-pt stencil, cuBLAS dot ×2, AXPY ×2, and two
/// host synchronizations per CG iteration — no framework overheads.
pub fn poisson_baseline_single_gpu(device: &DeviceModel, n: usize) -> SimTime {
    let cells = (n * n * n) as u64;
    let mut t = SimTime::ZERO;
    // UpdateP: read r, read+write p (24 B/cell).
    t += device.kernel_time(cells * 24, 0, 1.0);
    // Stencil: read p, write Ap (16 B/cell), full bandwidth (no guards).
    t += device.kernel_time(cells * 16, 0, 1.0);
    // cuBLAS dot(p, Ap): 16 B/cell.
    t += device.kernel_time(cells * 16, 0, 1.0);
    // x += a p; r -= a Ap: 24 B/cell each.
    t += device.kernel_time(cells * 24, 0, 1.0);
    t += device.kernel_time(cells * 24, 0, 1.0);
    // cuBLAS dot(r, r): 8 B/cell (one operand, cached second read).
    t += device.kernel_time(cells * 8, 0, 1.0);
    // Two host round trips (alpha, beta).
    t += device.sync_overhead();
    t += device.sync_overhead();
    t
}

/// Render an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:>w$}", w = w));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_math() {
        let t1 = SimTime::from_us(800.0);
        let t8 = SimTime::from_us(100.0);
        assert!((efficiency(t1, 8, t8) - 1.0).abs() < 1e-12);
        let t8_slow = SimTime::from_us(125.0);
        assert!((efficiency(t1, 8, t8_slow) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn baseline_poisson_is_bandwidth_dominated() {
        let d = DeviceModel::a100_40gb();
        let t = poisson_baseline_single_gpu(&d, 320);
        // 320³ × 144 B total ≈ 4.7 GB at 1555 GB/s ≈ 3 ms.
        assert!(t.as_ms() > 2.0 && t.as_ms() < 5.0, "baseline off: {t}");
    }

    #[test]
    fn lbm_runner_produces_sane_times() {
        let b = Backend::dgx_a100(8);
        let t = lbm_cavity_iter_time(&b, 192, OccLevel::Standard, 3);
        assert!(t.as_us() > 50.0 && t.as_us() < 2000.0, "got {t}");
    }

    #[test]
    fn infinite_link_removes_comm_cost() {
        let real = Backend::dgx_a100(8);
        let free = a100_backend_with_link(8, infinite_link());
        let t_real = lbm_cavity_iter_time(&real, 192, OccLevel::None, 3);
        let t_free = lbm_cavity_iter_time(&free, 192, OccLevel::None, 3);
        assert!(t_free < t_real, "{t_free} !< {t_real}");
    }

    #[test]
    fn sparse_cube_ratio_controls_active_cells() {
        let b = Backend::dgx_a100(2);
        let full = sparse_cube_grid(&b, 32, 1.0, StorageMode::Virtual).unwrap();
        let fifth = sparse_cube_grid(&b, 32, 0.2, StorageMode::Virtual).unwrap();
        use neon_domain::GridLike as _;
        let r = fifth.active_cells() as f64 / full.active_cells() as f64;
        assert!((r - 0.2).abs() < 0.05, "ratio off: {r}");
    }

    #[test]
    fn compile_run_split_hits_cache_on_rebuild() {
        // A backend shape no other test uses, so the first build is a
        // guaranteed miss even with the process-wide cache warm.
        let b = Backend::gv100_pcie(3);
        let (_, _, _) = poisson_compile_run_split(&b, 24, OccLevel::Extended, 1);
        let (compile2, _, hit2) = poisson_compile_run_split(&b, 48, OccLevel::Extended, 1);
        assert!(hit2, "structurally identical rebuild must hit the cache");
        assert_eq!(compile2.as_us(), 0.0, "cache hit does no compile work");
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
    }
}
