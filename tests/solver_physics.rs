//! Cross-application physics checks: properties that must hold because
//! of the *mathematics*, independent of any implementation detail —
//! linearity, superposition, symmetry, conservation. These catch subtle
//! distribution bugs (wrong halo cell, off-by-one partition edge) that
//! unit tests of the machinery can miss.

use neon::apps::fem::{ElasticitySolver, Material};
use neon::apps::lbm::{LbmParams, LidDrivenCavity};
use neon::apps::PoissonSolver;
use neon::prelude::*;
use neon_domain::StorageMode;

fn poisson_grid(ndev: usize, n: usize) -> DenseGrid {
    let b = Backend::dgx_a100(ndev);
    let st = Stencil::seven_point();
    DenseGrid::new(&b, Dim3::cube(n), &[&st], StorageMode::Real).unwrap()
}

/// Solve -∇²u = b and return u as a dense host array.
fn poisson_solve(g: &DenseGrid, rhs: impl Fn(i32, i32, i32) -> f64, iters: usize) -> Vec<f64> {
    let mut s = PoissonSolver::new(g, OccLevel::Standard).unwrap();
    s.set_rhs(rhs);
    s.solve_iters(iters);
    let n = g.dim().x;
    let mut out = vec![0.0; g.dim().count() as usize];
    s.solution().for_each(|x, y, z, _, v| {
        out[(z as usize * n + y as usize) * n + x as usize] = v;
    });
    out
}

#[test]
fn poisson_superposition() {
    // The operator is linear: u(b1 + b2) == u(b1) + u(b2).
    let g = poisson_grid(3, 9);
    let b1 = |x: i32, y: i32, z: i32| if (x, y, z) == (2, 4, 2) { 1.0 } else { 0.0 };
    let b2 = |x: i32, y: i32, z: i32| if (x, y, z) == (6, 3, 7) { -2.0 } else { 0.0 };
    let u1 = poisson_solve(&g, b1, 250);
    let u2 = poisson_solve(&g, b2, 250);
    let u12 = poisson_solve(&g, move |x, y, z| b1(x, y, z) + b2(x, y, z), 250);
    for i in 0..u12.len() {
        assert!(
            (u12[i] - (u1[i] + u2[i])).abs() < 1e-8,
            "superposition violated at {i}"
        );
    }
}

#[test]
fn poisson_symmetry_of_greens_function() {
    // With Dirichlet boundaries, G(a, b) == G(b, a).
    let g = poisson_grid(2, 8);
    let a = (1, 2, 3);
    let b = (6, 5, 4);
    let ua = poisson_solve(&g, move |x, y, z| f64::from((x, y, z) == a), 300);
    let ub = poisson_solve(&g, move |x, y, z| f64::from((x, y, z) == b), 300);
    let idx = |(x, y, z): (i32, i32, i32)| (z as usize * 8 + y as usize) * 8 + x as usize;
    assert!(
        (ua[idx(b)] - ub[idx(a)]).abs() < 1e-9,
        "G(a,b)={} G(b,a)={}",
        ua[idx(b)],
        ub[idx(a)]
    );
}

#[test]
fn poisson_mirror_symmetry_across_partitions() {
    // A source at the exact centre yields a solution symmetric in z —
    // even though the two halves live on different devices.
    let g = poisson_grid(2, 9);
    let u = poisson_solve(
        &g,
        |x, y, z| if (x, y, z) == (4, 4, 4) { 1.0 } else { 0.0 },
        250,
    );
    let idx = |x: usize, y: usize, z: usize| (z * 9 + y) * 9 + x;
    for z in 0..9 {
        for y in 0..9 {
            for x in 0..9 {
                let m = u[idx(x, y, 8 - z)];
                assert!(
                    (u[idx(x, y, z)] - m).abs() < 1e-9,
                    "z-mirror violated at ({x},{y},{z})"
                );
            }
        }
    }
}

#[test]
fn fem_linearity_in_load() {
    // Double the pressure → double the displacements (linear elasticity).
    let b = Backend::dgx_a100(2);
    let st = Stencil::twenty_seven_point();
    let g = DenseGrid::new(&b, Dim3::cube(6), &[&st], StorageMode::Real).unwrap();
    let solve = |p: f64| {
        let mut s =
            ElasticitySolver::new(&g, Material::default(), MemLayout::SoA, OccLevel::Standard)
                .unwrap();
        s.set_pressure_load(p);
        s.solve_iters(150);
        let mut out = Vec::new();
        s.displacements().for_each(|_, _, _, _, v| out.push(v));
        out
    };
    let u1 = solve(0.001);
    let u2 = solve(0.002);
    for (a, bb) in u1.iter().zip(&u2) {
        assert!(
            (2.0 * a - bb).abs() < 1e-9,
            "load linearity violated: {a} vs {bb}"
        );
    }
}

#[test]
fn fem_solution_is_xy_symmetric() {
    // A uniform load on a square column gives displacements symmetric
    // under x↔y — across the z-partitioned devices.
    let b = Backend::dgx_a100(3);
    let st = Stencil::twenty_seven_point();
    let g = DenseGrid::new(&b, Dim3::cube(6), &[&st], StorageMode::Real).unwrap();
    let mut s =
        ElasticitySolver::new(&g, Material::default(), MemLayout::AoS, OccLevel::Extended).unwrap();
    s.set_pressure_load(0.003);
    s.solve_iters(150);
    let d = s.displacements();
    for z in 0..6 {
        for y in 0..6 {
            for x in 0..6 {
                // u_z is symmetric under (x,y) swap; u_x and u_y exchange.
                let uz = d.get(x, y, z, 2).unwrap();
                let uz_t = d.get(y, x, z, 2).unwrap();
                assert!((uz - uz_t).abs() < 1e-9, "u_z asymmetric at ({x},{y},{z})");
                let ux = d.get(x, y, z, 0).unwrap();
                let uy_t = d.get(y, x, z, 1).unwrap();
                assert!((ux - uy_t).abs() < 1e-9, "u_x/u_y swap violated");
            }
        }
    }
}

#[test]
fn lbm_momentum_balance_in_closed_cavity() {
    // In the lid-driven cavity the only momentum source is the lid; the
    // y- and z-momentum totals stay tiny compared to x-momentum, and
    // density stays near 1 everywhere (weak compressibility).
    let b = Backend::dgx_a100(2);
    let st = Stencil::d3q19();
    let g = DenseGrid::new(&b, Dim3::cube(12), &[&st], StorageMode::Real).unwrap();
    let mut app = LidDrivenCavity::new(
        &g,
        LbmParams {
            omega: 1.0,
            u_lid: 0.05,
        },
        OccLevel::Standard,
    )
    .unwrap();
    app.init();
    app.step(80);
    let (mut px, mut pz) = (0.0f64, 0.0f64);
    let mut rho_min = f64::INFINITY;
    let mut rho_max = f64::NEG_INFINITY;
    for z in 0..12 {
        for y in 0..12 {
            for x in 0..12 {
                let (rho, u) = app.macroscopic(x, y, z).unwrap();
                px += rho * u[0];
                pz += rho * u[2];
                rho_min = rho_min.min(rho);
                rho_max = rho_max.max(rho);
            }
        }
    }
    assert!(px > 0.0, "lid should inject +x momentum: {px}");
    assert!(pz.abs() < px.abs() * 0.05, "z-momentum {pz} vs x {px}");
    assert!(
        rho_min > 0.9 && rho_max < 1.1,
        "density out of range: [{rho_min}, {rho_max}]"
    );
}

#[test]
fn lbm_cavity_is_y_mirror_of_reversed_lid() {
    // Driving the lid in −x produces the x-mirrored flow field.
    let run = |u_lid: f64| {
        let b = Backend::dgx_a100(2);
        let st = Stencil::d3q19();
        let g = DenseGrid::new(&b, Dim3::cube(10), &[&st], StorageMode::Real).unwrap();
        let mut app =
            LidDrivenCavity::new(&g, LbmParams { omega: 1.1, u_lid }, OccLevel::Standard).unwrap();
        app.init();
        app.step(40);
        app
    };
    let fwd = run(0.06);
    let bwd = run(-0.06);
    for z in 0..10 {
        for y in 0..10 {
            for x in 0..10 {
                let (_, uf) = fwd.macroscopic(x, y, z).unwrap();
                let (_, ub) = bwd.macroscopic(9 - x, y, z).unwrap();
                assert!(
                    (uf[0] + ub[0]).abs() < 1e-10,
                    "u_x mirror violated at ({x},{y},{z}): {} vs {}",
                    uf[0],
                    ub[0]
                );
                assert!((uf[1] - ub[1]).abs() < 1e-10, "u_y mirror violated");
            }
        }
    }
}

#[test]
fn lbm_flow_around_sphere_on_sparse_grid() {
    // Solid obstacles come for free on the element-sparse grid: inactive
    // cells make `ngh_active` false, and the LBM kernel's bounce-back
    // branch handles them exactly like the cavity walls. A sphere in the
    // cavity deflects the lid-driven flow and conserves mass.
    let n = 16;
    let b = Backend::dgx_a100(2);
    let st = Stencil::d3q19();
    let c = n as f64 / 2.0;
    let solid = move |x: i32, y: i32, z: i32| {
        let dx = x as f64 + 0.5 - c;
        let dy = y as f64 + 0.5 - c;
        let dz = z as f64 + 0.5 - c;
        (dx * dx + dy * dy + dz * dz).sqrt() <= 3.0
    };
    let g = SparseGrid::new(
        &b,
        Dim3::cube(n),
        &[&st],
        move |x, y, z| !solid(x, y, z),
        StorageMode::Real,
    )
    .unwrap();
    let mut app = LidDrivenCavity::new(
        &g,
        LbmParams {
            omega: 1.0,
            u_lid: 0.08,
        },
        OccLevel::Standard,
    )
    .unwrap();
    app.init();
    let m0 = app.total_mass();
    app.step(60);
    assert!((app.total_mass() - m0).abs() < 1e-9 * m0, "mass drifted");
    // The sphere is not part of the domain.
    assert!(app
        .macroscopic(n as i32 / 2, n as i32 / 2, n as i32 / 2)
        .is_none());
    // Flow exists near the lid and is weaker in the sphere's shadow.
    let (_, near_lid) = app
        .macroscopic(n as i32 / 2, n as i32 - 2, n as i32 / 2)
        .unwrap();
    assert!(near_lid[0] > 1e-3, "lid did not drive flow: {near_lid:?}");
    let (_, beside) = app
        .macroscopic(n as i32 / 2 + 5, n as i32 / 2, n as i32 / 2)
        .unwrap();
    assert!(beside[0].is_finite() && beside[1].is_finite());
}
