//! Property tests of the Skeleton's graph machinery over *randomly
//! generated* container pipelines: the dependency analysis must order
//! every conflicting pair (serializability), the multi-GPU and OCC
//! transforms must stay acyclic and sound, and — the strongest check —
//! functional execution must be invariant across every OCC level for
//! every random program.

use proptest::prelude::*;

use neon::prelude::*;
use neon_core::{EdgeKind, Graph};
use neon_domain::{ops, FieldStencil as _, FieldWrite as _, GridLike, StorageMode};

const NFIELDS: usize = 4;

/// One randomly chosen pipeline step.
#[derive(Debug, Clone, Copy)]
enum Op {
    Set(usize),
    Axpy(usize, usize),
    Copy(usize, usize),
    Stencil(usize, usize),
    Dot(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let f = 0..NFIELDS;
    prop_oneof![
        f.clone().prop_map(Op::Set),
        (0..NFIELDS, 0..NFIELDS).prop_map(|(a, b)| Op::Axpy(a, b)),
        (0..NFIELDS, 0..NFIELDS).prop_map(|(a, b)| Op::Copy(a, b)),
        (0..NFIELDS, 0..NFIELDS).prop_map(|(a, b)| Op::Stencil(a, b)),
        (0..NFIELDS, 0..NFIELDS).prop_map(|(a, b)| Op::Dot(a, b)),
    ]
}

struct Pipeline {
    containers: Vec<Container>,
    /// (reads, writes) field indices per container.
    accesses: Vec<(Vec<usize>, Vec<usize>)>,
    fields: Vec<Field<f64, DenseGrid>>,
    scalars: Vec<ScalarSet<f64>>,
}

fn build_pipeline(backend: &Backend, ops_list: &[Op]) -> Pipeline {
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(
        backend,
        Dim3::new(4, 4, 4 * backend.num_devices().max(2)),
        &[&st],
        StorageMode::Real,
    )
    .unwrap();
    let fields: Vec<Field<f64, DenseGrid>> = (0..NFIELDS)
        .map(|i| Field::new(&grid, &format!("f{i}"), 1, 0.0, MemLayout::SoA).unwrap())
        .collect();
    for (i, f) in fields.iter().enumerate() {
        f.fill(move |x, y, z, _| ((x + 2 * y + 3 * z + i as i32) % 7) as f64 - 3.0);
    }
    let mut containers = Vec::new();
    let mut accesses = Vec::new();
    let mut scalars = Vec::new();
    for (i, op) in ops_list.iter().enumerate() {
        match *op {
            Op::Set(a) => {
                containers.push(ops::set_value(&grid, &fields[a], i as f64 * 0.5 - 1.0));
                accesses.push((vec![], vec![a]));
            }
            Op::Axpy(a, b) if a != b => {
                containers.push(ops::axpy_const(&grid, 0.5, &fields[a], &fields[b]));
                accesses.push((vec![a, b], vec![b]));
            }
            Op::Axpy(a, _) => {
                containers.push(ops::scale_const(&grid, 1.25, &fields[a]));
                accesses.push((vec![a], vec![a]));
            }
            Op::Copy(a, b) if a != b => {
                containers.push(ops::copy(&grid, &fields[a], &fields[b]));
                accesses.push((vec![a], vec![b]));
            }
            Op::Copy(a, _) => {
                containers.push(ops::scale_const(&grid, 0.75, &fields[a]));
                accesses.push((vec![a], vec![a]));
            }
            Op::Stencil(a, b) if a != b => {
                let (src, dst) = (fields[a].clone(), fields[b].clone());
                containers.push(Container::compute(
                    &format!("stencil{i}"),
                    grid.as_space(),
                    move |ldr| {
                        let sv = ldr.read_stencil(&src);
                        let dv = ldr.write(&dst);
                        Box::new(move |c| {
                            let mut s = 0.0;
                            for slot in 0..6 {
                                s += sv.ngh(c, slot, 0);
                            }
                            dv.set(c, 0, s * 0.25);
                        })
                    },
                ));
                accesses.push((vec![a], vec![b]));
            }
            Op::Stencil(a, _) => {
                containers.push(ops::scale_const(&grid, 0.9, &fields[a]));
                accesses.push((vec![a], vec![a]));
            }
            Op::Dot(a, b) => {
                let s = ScalarSet::<f64>::new(
                    backend.num_devices(),
                    &format!("dot{i}"),
                    0.0,
                    |p, q| p + q,
                );
                containers.push(ops::dot(&grid, &fields[a], &fields[b], &s));
                accesses.push((vec![a, b], vec![]));
                scalars.push(s);
            }
        }
    }
    Pipeline {
        containers,
        accesses,
        fields,
        scalars,
    }
}

/// Reachability over data edges.
fn reaches(g: &Graph, from: usize, to: usize) -> bool {
    let mut stack = vec![from];
    let mut seen = vec![false; g.len()];
    while let Some(u) = stack.pop() {
        if u == to {
            return true;
        }
        if std::mem::replace(&mut seen[u], true) {
            continue;
        }
        for e in g.edges() {
            if e.from == u && e.kind != EdgeKind::Sched && !seen[e.to] {
                stack.push(e.to);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serializability: any two containers where one writes a field the
    /// other touches must be path-ordered in program order — even after
    /// transitive reduction and halo insertion.
    #[test]
    fn prop_conflicting_containers_are_ordered(
        ops_list in prop::collection::vec(op_strategy(), 2..10),
    ) {
        let backend = Backend::dgx_a100(2);
        let p = build_pipeline(&backend, &ops_list);
        let dep = neon_core::build_dependency_graph(&p.containers);
        let mg = neon_core::to_multigpu_graph(&dep, 2);
        // The multi-GPU transform preserves container order (halo nodes
        // are interleaved): the i-th non-halo node is container i.
        let node_of: Vec<usize> = mg
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.is_halo())
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(node_of.len(), p.containers.len());
        for i in 0..p.containers.len() {
            for j in (i + 1)..p.containers.len() {
                let (ri, wi) = &p.accesses[i];
                let (rj, wj) = &p.accesses[j];
                let conflict = wi.iter().any(|f| rj.contains(f) || wj.contains(f))
                    || wj.iter().any(|f| ri.contains(f));
                if conflict {
                    prop_assert!(
                        reaches(&mg, node_of[i], node_of[j]),
                        "containers {i} and {j} conflict but are unordered"
                    );
                }
            }
        }
    }

    /// Every OCC level keeps the graph acyclic, schedules every node, and
    /// computes exactly the same field values and reductions as no-OCC.
    #[test]
    fn prop_occ_equivalence_random_programs(
        ops_list in prop::collection::vec(op_strategy(), 2..8),
        ndev in 1usize..4,
    ) {
        let run = |occ: OccLevel| {
            let backend = Backend::dgx_a100(ndev);
            let p = build_pipeline(&backend, &ops_list);
            let mut sk = Skeleton::sequence(
                &backend,
                "random",
                p.containers.clone(),
                SkeletonOptions::with_occ(occ),
            );
            assert_eq!(sk.schedule().tasks.len(), sk.graph().len());
            sk.run();
            let mut field_vals = Vec::new();
            for f in &p.fields {
                f.for_each(|_, _, _, _, v| field_vals.push(v));
            }
            let scalar_vals: Vec<f64> = p.scalars.iter().map(|s| s.host_value()).collect();
            (field_vals, scalar_vals)
        };
        let reference = run(OccLevel::None);
        for occ in [OccLevel::Standard, OccLevel::Extended, OccLevel::TwoWayExtended] {
            let got = run(occ);
            prop_assert_eq!(&got.0, &reference.0, "{} changed fields", occ);
            for (a, b) in got.1.iter().zip(&reference.1) {
                prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
            }
        }
    }

    /// Rerunning the same skeleton is deterministic, and its virtual
    /// makespan is identical on every execution.
    #[test]
    fn prop_skeleton_rerun_deterministic(
        ops_list in prop::collection::vec(op_strategy(), 2..6),
    ) {
        let backend = Backend::dgx_a100(2);
        let p = build_pipeline(&backend, &ops_list);
        let mut sk = Skeleton::sequence(
            &backend,
            "det",
            p.containers.clone(),
            SkeletonOptions::default(),
        );
        let t1 = sk.run().makespan;
        let t2 = sk.run().makespan;
        prop_assert!((t1.as_us() - t2.as_us()).abs() < 1e-9, "{t1} vs {t2}");
    }
}
