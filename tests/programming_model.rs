//! End-to-end tests of the user-facing programming model, exercising the
//! paper's claims through the public facade crate:
//!
//! * applications are written as sequential container lists (Listing 3),
//! * the back end is swappable without touching user code,
//! * the grid data structure is swappable without touching user code,
//! * the memory layout is swappable without touching user code,
//! * OCC levels never change results.

use neon::prelude::*;
use neon_domain::{ops, FieldRead as _, FieldStencil as _, FieldWrite as _, GridLike, StorageMode};
use neon_sys::BackendKind;

/// A little "application": blur u into v, scale v, then measure ‖v‖².
/// Written once, generic over the grid — the paper's central promise.
fn blur_app<G: GridLike>(
    grid: &G,
    u: &Field<f64, G>,
    v: &Field<f64, G>,
) -> (Vec<Container>, ScalarSet<f64>) {
    let norm = ScalarSet::<f64>::new(grid.num_partitions(), "norm", 0.0, |a, b| a + b);
    let blur = {
        let (uc, vc) = (u.clone(), v.clone());
        Container::compute("blur", grid.as_space(), move |ldr| {
            let uv = ldr.read_stencil(&uc);
            let vv = ldr.write(&vc);
            Box::new(move |c| {
                let mut s = uv.at(c, 0);
                let mut n = 1.0;
                for slot in 0..uv.num_slots() {
                    if uv.ngh_active(c, slot) {
                        s += uv.ngh(c, slot, 0);
                        n += 1.0;
                    }
                }
                vv.set(c, 0, s / n);
            })
        })
    };
    let scale = ops::scale_const(grid, 2.0, v);
    let dot = ops::dot(grid, v, v, &norm);
    (vec![blur, scale, dot], norm)
}

fn run_on<G: GridLike>(grid: &G, occ: OccLevel) -> (Vec<f64>, f64) {
    let u = Field::<f64, _>::new(grid, "u", 1, 0.0, MemLayout::SoA).unwrap();
    let v = Field::<f64, _>::new(grid, "v", 1, 0.0, MemLayout::SoA).unwrap();
    u.fill(|x, y, z, _| ((x * 13 + y * 7 + z * 3) % 17) as f64 - 8.0);
    let (containers, norm) = blur_app(grid, &u, &v);
    let mut sk = Skeleton::sequence(
        grid.backend(),
        "blur-app",
        containers,
        SkeletonOptions::with_occ(occ),
    );
    sk.run();
    let mut vals = Vec::new();
    v.for_each(|_, _, _, _, val| vals.push(val));
    (vals, norm.host_value())
}

#[test]
fn backend_swap_preserves_results() {
    let st = Stencil::seven_point();
    let dim = Dim3::new(6, 6, 16);
    let mk_dense =
        |backend: &Backend| DenseGrid::new(backend, dim, &[&st], StorageMode::Real).unwrap();
    let reference = run_on(&mk_dense(&Backend::cpu()), OccLevel::None);
    for backend in [
        Backend::dgx_a100(1),
        Backend::dgx_a100(3),
        Backend::dgx_a100(8),
        Backend::gv100_pcie(4),
    ] {
        let got = run_on(&mk_dense(&backend), OccLevel::Standard);
        assert_eq!(got.0.len(), reference.0.len());
        for (a, b) in got.0.iter().zip(&reference.0) {
            assert!((a - b).abs() < 1e-12, "backend changed results");
        }
        assert!((got.1 - reference.1).abs() < 1e-9 * reference.1.abs().max(1.0));
    }
}

#[test]
fn grid_swap_preserves_results() {
    let st = Stencil::seven_point();
    let dim = Dim3::new(6, 6, 12);
    let backend = Backend::dgx_a100(2);
    let dense = DenseGrid::new(&backend, dim, &[&st], StorageMode::Real).unwrap();
    let sparse = SparseGrid::new(&backend, dim, &[&st], |_, _, _| true, StorageMode::Real).unwrap();
    let (dv, dn) = run_on(&dense, OccLevel::Standard);
    let (sv, sn) = run_on(&sparse, OccLevel::Standard);
    // Iteration order differs between grids, so compare the multiset via
    // the norm and per-cell lookups instead.
    assert!((dn - sn).abs() < 1e-9 * dn.max(1.0));
    assert_eq!(dv.len(), sv.len());
}

#[test]
fn layout_swap_preserves_results() {
    let st = Stencil::seven_point();
    let backend = Backend::dgx_a100(2);
    let grid = DenseGrid::new(&backend, Dim3::new(5, 7, 8), &[&st], StorageMode::Real).unwrap();
    let mut results = Vec::new();
    for layout in [MemLayout::SoA, MemLayout::AoS] {
        let u = Field::<f64, _>::new(&grid, "u", 3, 0.0, layout).unwrap();
        let v = Field::<f64, _>::new(&grid, "v", 3, 0.0, layout).unwrap();
        u.fill(|x, y, z, k| (x + 2 * y + 3 * z) as f64 + k as f64 * 0.25);
        let shift = {
            let (uc, vc) = (u.clone(), v.clone());
            Container::compute("shift", grid.as_space(), move |ldr| {
                let uv = ldr.read_stencil(&uc);
                let vv = ldr.write(&vc);
                Box::new(move |c| {
                    for k in 0..3 {
                        vv.set(c, k, uv.ngh(c, 5, k)); // +z neighbour
                    }
                })
            })
        };
        let mut sk = Skeleton::sequence(&backend, "shift", vec![shift], SkeletonOptions::default());
        sk.run();
        let mut vals = Vec::new();
        v.for_each(|_, _, _, _, val| vals.push(val));
        results.push(vals);
    }
    assert_eq!(results[0], results[1], "SoA and AoS must agree");
}

#[test]
fn occ_sweep_preserves_results_and_norm() {
    let st = Stencil::seven_point();
    let backend = Backend::dgx_a100(4);
    let grid = DenseGrid::new(&backend, Dim3::new(6, 6, 16), &[&st], StorageMode::Real).unwrap();
    let reference = run_on(&grid, OccLevel::None);
    for occ in [
        OccLevel::Standard,
        OccLevel::Extended,
        OccLevel::TwoWayExtended,
    ] {
        let got = run_on(&grid, occ);
        assert_eq!(got.0, reference.0, "{occ} changed field values");
        assert!((got.1 - reference.1).abs() < 1e-9 * reference.1.abs().max(1.0));
    }
}

#[test]
fn cpu_backend_is_single_queue() {
    let b = Backend::cpu();
    assert_eq!(b.kind(), BackendKind::Cpu);
    assert!(!b.concurrent_kernels());
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(&b, Dim3::cube(8), &[&st], StorageMode::Real).unwrap();
    let u = Field::<f64, _>::new(&grid, "u", 1, 0.0, MemLayout::SoA).unwrap();
    let v = Field::<f64, _>::new(&grid, "v", 1, 0.0, MemLayout::SoA).unwrap();
    u.fill(|_, _, _, _| 1.0);
    let (containers, _) = blur_app(&grid, &u, &v);
    let sk = Skeleton::sequence(&b, "cpu-app", containers, SkeletonOptions::default());
    assert_eq!(sk.schedule().num_streams, 1);
}

#[test]
fn full_cg_pipeline_through_facade() {
    use neon::apps::PoissonSolver;
    let backend = Backend::dgx_a100(2);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, Dim3::cube(8), &[&st], StorageMode::Real).unwrap();
    let mut solver = PoissonSolver::new(&grid, OccLevel::TwoWayExtended).unwrap();
    solver.set_rhs(|x, y, z| if (x, y, z) == (4, 4, 4) { 1.0 } else { 0.0 });
    solver.solve_iters(150);
    // The potential from a positive source is positive and peaks there.
    let peak = solver.solution().get(4, 4, 4, 0).unwrap();
    let far = solver.solution().get(0, 0, 0, 0).unwrap();
    assert!(peak > 0.0 && peak > far);
}

#[test]
fn skeleton_graph_introspection_matches_paper_stages() {
    // The Fig. 4 pipeline: map → stencil → reduce. Check the skeleton
    // exposes its stages: dependency graph (3 nodes), multi-GPU graph
    // (+halo), OCC graph (split nodes).
    let st = Stencil::seven_point();
    let backend = Backend::dgx_a100(2);
    let grid = DenseGrid::new(&backend, Dim3::new(4, 4, 8), &[&st], StorageMode::Real).unwrap();
    let u = Field::<f64, _>::new(&grid, "u", 1, 0.0, MemLayout::SoA).unwrap();
    let v = Field::<f64, _>::new(&grid, "v", 1, 0.0, MemLayout::SoA).unwrap();
    let (containers, _) = blur_app(&grid, &u, &v);
    // Fusion would collapse the whole pipeline into one node (the blur's
    // stencil read is of `u`, which no member writes); pin it off — this
    // test is about the OCC splitting stages specifically.
    let sk = Skeleton::sequence(
        &backend,
        "introspect",
        containers,
        SkeletonOptions {
            fusion: FusionLevel::Off,
            ..SkeletonOptions::with_occ(OccLevel::TwoWayExtended)
        },
    );
    assert_eq!(sk.dependency_graph().len(), 3);
    let names: Vec<_> = sk.graph().nodes().iter().map(|n| n.name.clone()).collect();
    assert!(names.iter().any(|n| n.starts_with("halo")), "{names:?}");
    assert!(names.iter().any(|n| n.ends_with(".int")), "{names:?}");
    assert!(names.iter().any(|n| n.ends_with(".bnd")), "{names:?}");
    // Schedule covers every node exactly once.
    assert_eq!(sk.schedule().tasks.len(), sk.graph().len());
}

#[test]
fn heterogeneous_partitioning_balances_makespan() {
    use neon_domain::PartitionStrategy;
    use neon_sys::{BackendKind, DeviceModel, Topology};
    // A mixed system: 2 fast A100s + 2 slower GV100s.
    let devices = vec![
        DeviceModel::a100_40gb(),
        DeviceModel::a100_40gb(),
        DeviceModel::gv100(),
        DeviceModel::gv100(),
    ];
    let topo = Topology::nvlink_all_to_all(4, 1555.0);
    let backend = neon_sys::Backend::new(BackendKind::Gpu, devices, topo).unwrap();
    let run = |strategy: PartitionStrategy| {
        let st = Stencil::seven_point();
        let g = neon_domain::DenseGrid::with_partitioning(
            &backend,
            Dim3::cube(256),
            &[&st],
            StorageMode::Virtual,
            strategy,
        )
        .unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        let sten = {
            let (xc, yc) = (x.clone(), y.clone());
            Container::compute("stn", g.as_space(), move |ldr| {
                let xv = ldr.read_stencil(&xc);
                let yv = ldr.write(&yc);
                Box::new(move |c| yv.set(c, 0, xv.ngh(c, 0, 0)))
            })
        };
        let mut sk = Skeleton::sequence(
            &backend,
            "hetero",
            vec![sten],
            SkeletonOptions::with_occ(OccLevel::Standard),
        );
        (g, sk.run_iters(5).time_per_execution())
    };
    let (even_grid, t_even) = run(PartitionStrategy::Even);
    let (prop_grid, t_prop) = run(PartitionStrategy::DeviceProportional);
    // Proportional gives the fast devices more layers...
    let layers = |g: &DenseGrid, d: usize| {
        let (a, b) = g.owned_z_range(DeviceId(d));
        b - a
    };
    assert_eq!(layers(&even_grid, 0), layers(&even_grid, 3));
    assert!(
        layers(&prop_grid, 0) > layers(&prop_grid, 3),
        "A100 should own more layers than GV100"
    );
    // ...and the makespan improves (the slowest device stops dominating).
    assert!(
        t_prop.as_us() < t_even.as_us() * 0.85,
        "proportional {t_prop} should clearly beat even {t_even}"
    );
}

#[test]
fn proportional_partition_properties() {
    use neon_domain::proportional_slab_partition;
    let slabs = proportional_slab_partition(100, &[3.0, 1.0]);
    assert_eq!(slabs, vec![(0, 75), (75, 100)]);
    // Coverage and non-emptiness with awkward shares.
    let slabs = proportional_slab_partition(7, &[1.0, 100.0, 1.0]);
    assert_eq!(slabs.first().unwrap().0, 0);
    assert_eq!(slabs.last().unwrap().1, 7);
    for (a, b) in &slabs {
        assert!(b > a);
    }
}
