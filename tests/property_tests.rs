//! Property-based tests over the core invariants of the stack, using
//! randomly generated domains, partitions, masks and schedules.

use proptest::prelude::*;

use neon::prelude::*;
use neon_domain::{
    slab_partition, weighted_slab_partition, FieldStencil as _, FieldWrite as _, GridLike, Offset3,
    StorageMode,
};
use neon_set::IterationSpace;
use neon_sys::{DeviceId, MemoryLedger, QueueSim, SimTime, SpanKind, StreamId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slab partitioning covers [0, total) contiguously and balanced.
    #[test]
    fn prop_slab_partition_covers(total in 1usize..200, parts in 1usize..16) {
        prop_assume!(total >= parts);
        let slabs = slab_partition(total, parts);
        prop_assert_eq!(slabs.len(), parts);
        prop_assert_eq!(slabs[0].0, 0);
        prop_assert_eq!(slabs.last().unwrap().1, total);
        for w in slabs.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0);
        }
        let sizes: Vec<usize> = slabs.iter().map(|(a, b)| b - a).collect();
        prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    /// Weighted partitioning covers everything with non-empty slabs and a
    /// bounded imbalance whenever the weights allow it.
    #[test]
    fn prop_weighted_partition_covers(
        weights in prop::collection::vec(0u64..100, 4..64),
        parts in 1usize..8,
    ) {
        prop_assume!(weights.len() >= parts);
        prop_assume!(weights.iter().sum::<u64>() > 0);
        let slabs = weighted_slab_partition(&weights, parts);
        prop_assert_eq!(slabs.len(), parts);
        prop_assert_eq!(slabs[0].0, 0);
        prop_assert_eq!(slabs.last().unwrap().1, weights.len());
        for w in slabs.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0);
        }
        for (a, b) in &slabs {
            prop_assert!(b > a, "empty slab");
        }
    }

    /// Every owned cell of a dense grid appears in exactly one partition
    /// and exactly one view class; locate() agrees with iteration.
    #[test]
    fn prop_dense_grid_partition_invariants(
        nx in 2usize..6,
        ny in 2usize..6,
        nz in 4usize..24,
        ndev in 1usize..5,
    ) {
        prop_assume!(nz >= 2 * ndev);
        let b = Backend::dgx_a100(ndev);
        let st = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(nx, ny, nz), &[&st], StorageMode::Real).unwrap();
        let mut seen = std::collections::HashMap::new();
        for d in 0..ndev {
            let dev = DeviceId(d);
            let mut int = 0u64;
            let mut bnd = 0u64;
            g.for_each_cell(dev, DataView::Internal, &mut |c| {
                int += 1;
                *seen.entry((c.x, c.y, c.z)).or_insert(0) += 1;
            });
            g.for_each_cell(dev, DataView::Boundary, &mut |c| {
                bnd += 1;
                *seen.entry((c.x, c.y, c.z)).or_insert(0) += 1;
            });
            prop_assert_eq!(int, g.cell_count(dev, DataView::Internal));
            prop_assert_eq!(bnd, g.cell_count(dev, DataView::Boundary));
            prop_assert_eq!(int + bnd, g.cell_count(dev, DataView::Standard));
        }
        prop_assert_eq!(seen.len() as u64, (nx * ny * nz) as u64);
        prop_assert!(seen.values().all(|&v| v == 1), "cell in two views/partitions");
        // locate round-trips.
        for d in 0..ndev {
            g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
                let (dev, lin) = g.locate(c.x, c.y, c.z).unwrap();
                assert_eq!((dev, lin), (DeviceId(d), c.lin));
            });
        }
    }

    /// Sparse grids store exactly the masked cells; connectivity agrees
    /// with the mask; boundary and halo mirrors match.
    #[test]
    fn prop_sparse_grid_mask_invariants(
        seed in 0u64..1000,
        ndev in 1usize..4,
        density in 0.2f64..1.0,
    ) {
        let dim = Dim3::new(5, 5, 12);
        let mask = move |x: i32, y: i32, z: i32| {
            // Deterministic pseudo-random mask from the seed.
            let h = (x as u64)
                .wrapping_mul(2654435761)
                .wrapping_add((y as u64).wrapping_mul(40503))
                .wrapping_add((z as u64).wrapping_mul(69069))
                .wrapping_add(seed)
                .wrapping_mul(6364136223846793005);
            ((h >> 33) as f64 / (1u64 << 31) as f64) < density
        };
        let b = Backend::dgx_a100(ndev);
        let st = Stencil::seven_point();
        let g = match SparseGrid::new(&b, dim, &[&st], mask, StorageMode::Real) {
            Ok(g) => g,
            Err(_) => return Ok(()), // e.g. no active cells — fine
        };
        // Count active cells from the mask directly.
        let mut expect = 0u64;
        for z in 0..12 {
            for y in 0..5 {
                for x in 0..5 {
                    if mask(x, y, z) {
                        expect += 1;
                    }
                }
            }
        }
        prop_assert_eq!(g.active_cells(), expect);
        // Iteration yields exactly the masked cells, once each.
        let mut seen = std::collections::HashSet::new();
        for d in 0..ndev {
            g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
                assert!(mask(c.x, c.y, c.z), "inactive cell iterated");
                assert!(seen.insert((c.x, c.y, c.z)), "duplicate");
            });
        }
        prop_assert_eq!(seen.len() as u64, expect);
    }

    /// A stencil read across partitions equals the neighbour's owned
    /// value after a halo update — for any device count and cardinality.
    #[test]
    fn prop_halo_exchange_correct(
        ndev in 1usize..5,
        card in 1usize..4,
        soa in any::<bool>(),
    ) {
        let dim = Dim3::new(4, 4, 16);
        let b = Backend::dgx_a100(ndev);
        let st = Stencil::seven_point();
        let g = DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap();
        let layout = if soa { MemLayout::SoA } else { MemLayout::AoS };
        let f = Field::<f64, _>::new(&g, "f", card, -1.0, layout).unwrap();
        f.fill(|x, y, z, k| (x + 10 * y + 100 * z) as f64 + k as f64 * 0.1);
        let up = g.slot_of(Offset3::new(0, 0, 1)).unwrap();
        let down = g.slot_of(Offset3::new(0, 0, -1)).unwrap();
        for d in 0..ndev {
            let mut ldr = neon_domain::Loader::for_execution(DeviceId(d), ndev, DataView::Standard);
            let sv = ldr.read_stencil(&f);
            g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
                for k in 0..card {
                    let expect_up = if c.z + 1 < dim.z as i32 {
                        (c.x + 10 * c.y + 100 * (c.z + 1)) as f64 + k as f64 * 0.1
                    } else {
                        -1.0
                    };
                    assert_eq!(sv.ngh(c, up, k), expect_up, "up at ({},{},{})", c.x, c.y, c.z);
                    let expect_dn = if c.z > 0 {
                        (c.x + 10 * c.y + 100 * (c.z - 1)) as f64 + k as f64 * 0.1
                    } else {
                        -1.0
                    };
                    assert_eq!(sv.ngh(c, down, k), expect_dn);
                }
            });
        }
    }

    /// The ledger never loses bytes under arbitrary alloc/free sequences.
    #[test]
    fn prop_memory_ledger_consistent(ops in prop::collection::vec(0u64..1000, 1..40)) {
        let ledger = MemoryLedger::new(DeviceId(0), 100_000);
        let mut tickets = Vec::new();
        let mut expect = 0u64;
        for (i, sz) in ops.iter().enumerate() {
            if i % 3 == 2 && !tickets.is_empty() {
                let t: neon_sys::AllocationTicket = tickets.swap_remove(0);
                expect -= t.bytes();
                drop(t);
            } else if let Ok(t) = ledger.alloc(*sz) {
                expect += sz;
                tickets.push(t);
            }
            prop_assert_eq!(ledger.in_use(), expect);
            prop_assert!(ledger.peak() >= ledger.in_use());
        }
        drop(tickets);
        prop_assert_eq!(ledger.in_use(), 0);
    }

    /// Virtual-clock invariants: makespan dominates every stream's busy
    /// time, and events never travel back in time.
    #[test]
    fn prop_queue_sim_invariants(durations in prop::collection::vec(0.0f64..100.0, 1..32)) {
        let mut q = QueueSim::new(2, 2);
        q.enable_trace();
        let mut events = Vec::new();
        for (i, d) in durations.iter().enumerate() {
            let s = StreamId::new(DeviceId(i % 2), (i / 2) % 2);
            q.enqueue(s, SimTime::from_us(*d), "op", SpanKind::Kernel);
            let e = q.create_event();
            q.record_event(s, e);
            events.push((s, e));
            // Cross-wait on a previous event sometimes.
            if i % 3 == 0 && i > 0 {
                let (_, pe) = events[i / 2];
                let target = StreamId::new(DeviceId((i + 1) % 2), 0);
                q.wait_event(target, pe).unwrap();
            }
        }
        let makespan = q.makespan();
        let trace = q.trace().unwrap();
        for d in 0..2 {
            for s in 0..2 {
                prop_assert!(trace.busy_time(DeviceId(d), s) <= makespan + SimTime::from_us(1e-9));
            }
        }
        for span in trace.spans() {
            prop_assert!(span.end.as_us() >= span.start.as_us());
        }
    }

    /// Functional results are invariant under device count AND OCC level
    /// for a random map+stencil pipeline.
    #[test]
    fn prop_execution_invariance(
        seed in 0i32..1000,
        ndev in 1usize..5,
        occ_idx in 0usize..4,
    ) {
        let occ = OccLevel::ALL[occ_idx];
        let dim = Dim3::new(4, 4, 12);
        let run = |ndev: usize, occ: OccLevel| -> Vec<f64> {
            let b = Backend::dgx_a100(ndev);
            let st = Stencil::seven_point();
            let g = DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap();
            let u = Field::<f64, _>::new(&g, "u", 1, 0.0, MemLayout::SoA).unwrap();
            let v = Field::<f64, _>::new(&g, "v", 1, 0.0, MemLayout::SoA).unwrap();
            u.fill(move |x, y, z, _| ((x * 31 + y * 17 + z * 7 + seed) % 23) as f64);
            let touch = {
                let uc = u.clone();
                Container::compute("touch", g.as_space(), move |ldr| {
                    let uv = ldr.read_write(&uc);
                    Box::new(move |c| uv.set(c, 0, uv.at(c, 0) * 1.5 - 1.0))
                })
            };
            let sten = {
                let (uc, vc) = (u.clone(), v.clone());
                Container::compute("sten", g.as_space(), move |ldr| {
                    let uv = ldr.read_stencil(&uc);
                    let vv = ldr.write(&vc);
                    Box::new(move |c| {
                        let mut s = 0.0;
                        for slot in 0..6 {
                            s += uv.ngh(c, slot, 0);
                        }
                        vv.set(c, 0, s);
                    })
                })
            };
            let mut sk = Skeleton::sequence(
                &b,
                "rand",
                vec![touch, sten],
                SkeletonOptions::with_occ(occ),
            );
            sk.run();
            let mut out = Vec::new();
            v.for_each(|_, _, _, _, val| out.push(val));
            out
        };
        let reference = run(1, OccLevel::None);
        let got = run(ndev, occ);
        prop_assert_eq!(reference, got);
    }

    /// Timing-model sanity: for domains large enough to amortize transfer
    /// latency, more devices reduce per-iteration time; OCC never loses
    /// to no-OCC; efficiency is never super-linear.
    #[test]
    fn prop_timing_monotonicity(n in 6usize..11) {
        let n = n * 32; // 192..320 cubed
        let t = |ndev: usize, occ: OccLevel| {
            let b = Backend::dgx_a100(ndev);
            let st = Stencil::d3q19();
            let g = DenseGrid::new(&b, Dim3::cube(n), &[&st], StorageMode::Virtual).unwrap();
            let mut app = neon::apps::lbm::LidDrivenCavity::new(
                &g,
                neon::apps::lbm::LbmParams::default(),
                occ,
            )
            .unwrap();
            app.init();
            app.step(2).time_per_execution().as_us()
        };
        let t1 = t(1, OccLevel::None);
        let t4_none = t(4, OccLevel::None);
        let t4_occ = t(4, OccLevel::Standard);
        prop_assert!(t4_none < t1, "4 devices should beat 1");
        prop_assert!(t4_occ <= t4_none * 1.0001, "OCC should never lose");
        // And efficiency can't be super-linear.
        prop_assert!(t1 / (4.0 * t4_occ) <= 1.0 + 1e-9, "super-linear efficiency");
    }
}
