//! Property and acceptance tests for the `neon-comm` collective layer
//! and its integration into the Skeleton.
//!
//! * **Bit-identity**: the functional all-reduce is a canonical rank-order
//!   fold, so for *any* device count, payload and link class it must be
//!   bit-identical to sequentially folding the device buffers in rank
//!   order (even for non-associative floating-point combines).
//! * **Makespan monotonicity**: on NVLink all-to-all topologies with ≥4
//!   devices, the ring algorithm never loses to the host-staged baseline.
//! * **End-to-end acceptance**: an 8-device CG iteration whose dot
//!   products go through ring all-reduce has strictly lower makespan than
//!   the same iteration forced through host staging.

use proptest::prelude::*;

use neon::comm::{all_reduce, Algorithm, CollectiveEngine, CollectiveKind, EngineConfig};
use neon::prelude::*;
use neon_sys::{QueueSim, Topology};

fn zeros(n: usize) -> Vec<SimTime> {
    vec![SimTime::ZERO; n]
}

fn topo_for(class: bool, n: usize) -> Topology {
    if class {
        Topology::nvlink_all_to_all(n, 1555.0)
    } else {
        Topology::pcie_host_staged(n, 870.0)
    }
}

proptest! {
    /// The functional all-reduce equals the sequential rank-order fold
    /// bit-for-bit, regardless of device count, payload size, payload
    /// values, or which link class (and hence which algorithm the
    /// auto-selector picks) carries it.
    #[test]
    fn all_reduce_bit_identical_to_sequential_fold(
        ndev in 1usize..=8,
        len in 1usize..48,
        seed in any::<u64>(),
        nvlink in any::<bool>(),
    ) {
        // Deterministic but irregular payloads; addition over these is
        // genuinely non-associative in f64.
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 1e6 - 5e5
        };
        let bufs: Vec<Vec<f64>> =
            (0..ndev).map(|_| (0..len).map(|_| next()).collect()).collect();

        // Expected: sequential fold in rank order, element-wise.
        let expected: Vec<f64> = (0..len)
            .map(|i| bufs.iter().skip(1).fold(bufs[0][i], |acc, b| acc + b[i]))
            .collect();

        let mut reduced = bufs.clone();
        all_reduce(&mut reduced, |a, b| a + b);
        for (d, buf) in reduced.iter().enumerate() {
            prop_assert_eq!(
                buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "device {} diverged from the sequential fold", d
            );
        }

        // The timing engine schedules the same payload on either link
        // class without affecting the data path; every device finishes at
        // the same (non-negative) virtual time.
        let topo = topo_for(nvlink, ndev);
        let engine = CollectiveEngine::new(topo);
        let mut q = QueueSim::new(ndev, 1);
        let t = engine.schedule(
            &mut q,
            CollectiveKind::AllReduce,
            (len * 8) as u64,
            &zeros(ndev),
            0,
            "prop",
        );
        prop_assert_eq!(t.done.len(), ndev);
        if ndev > 1 {
            prop_assert!(t.makespan() > SimTime::ZERO);
        }
    }

    /// Host-staged → ring is monotonically non-increasing in makespan on
    /// NVLink all-to-all topologies with at least 4 devices, for any
    /// payload size.
    #[test]
    fn ring_never_loses_to_host_staged_on_nvlink(
        ndev in 4usize..=8,
        kib in 0u64..=16_384,
    ) {
        let bytes = 8 + kib * 1024;
        let run = |alg: Algorithm| {
            let mut q = QueueSim::new(ndev, 1);
            let engine = CollectiveEngine::with_config(
                Topology::nvlink_all_to_all(ndev, 1555.0),
                EngineConfig { algorithm: Some(alg), ..EngineConfig::default() },
            );
            engine
                .schedule(&mut q, CollectiveKind::AllReduce, bytes, &zeros(ndev), 0, "ar")
                .makespan()
        };
        let ring = run(Algorithm::Ring);
        let host = run(Algorithm::HostStaged);
        prop_assert!(
            ring <= host,
            "{} dev, {} B: ring {} > host-staged {}",
            ndev, bytes, ring, host
        );
    }
}

/// Build a CG (Poisson) iteration skeleton on an 8-device DGX with the
/// given collective mode and return its per-iteration makespan.
fn cg_makespan(mode: CollectiveMode) -> SimTime {
    use neon::apps::PoissonSolver;
    use neon_domain::StorageMode;

    let backend = Backend::dgx_a100(8);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, Dim3::new(16, 16, 64), &[&st], StorageMode::Real).unwrap();
    let options = SkeletonOptions {
        occ: OccLevel::Standard,
        collectives: mode,
        ..SkeletonOptions::default()
    };
    let mut solver = PoissonSolver::with_options(&grid, options).unwrap();
    solver.set_rhs(|x, y, z| (x + y + z) as f64);
    solver.solve_iters(4).time_per_execution()
}

/// Acceptance: routing the CG dot products through ring all-reduce
/// strictly beats the host-staged baseline on 8 NVLink devices.
#[test]
fn cg_dot_ring_beats_host_staged_on_8_devices() {
    let ring = cg_makespan(CollectiveMode::Fixed(CollectiveAlgorithm::Ring));
    let host = cg_makespan(CollectiveMode::Fixed(CollectiveAlgorithm::HostStaged));
    assert!(
        ring < host,
        "ring CG iteration {ring} not strictly below host-staged {host}"
    );
    // Auto is never worse than either explicit choice.
    let auto = cg_makespan(CollectiveMode::Auto);
    assert!(auto <= ring && auto <= host, "auto {auto} worse than fixed");
}

/// The functional result of a CG solve is identical across collective
/// algorithms (canonical rank-order fold).
#[test]
fn cg_residual_identical_across_algorithms() {
    use neon::apps::PoissonSolver;
    use neon_domain::StorageMode;

    let residual = |mode: CollectiveMode| {
        let backend = Backend::dgx_a100(4);
        let st = Stencil::seven_point();
        let grid =
            DenseGrid::new(&backend, Dim3::new(8, 8, 16), &[&st], StorageMode::Real).unwrap();
        let options = SkeletonOptions {
            collectives: mode,
            ..SkeletonOptions::default()
        };
        let mut solver = PoissonSolver::with_options(&grid, options).unwrap();
        solver.set_rhs(|x, y, z| ((x * 7 + y * 3 + z) % 5) as f64 - 2.0);
        solver.solve_iters(5);
        solver.residual()
    };
    let r_auto = residual(CollectiveMode::Auto);
    let r_ring = residual(CollectiveMode::Fixed(CollectiveAlgorithm::Ring));
    let r_tree = residual(CollectiveMode::Fixed(CollectiveAlgorithm::Tree));
    let r_host = residual(CollectiveMode::Fixed(CollectiveAlgorithm::HostStaged));
    assert_eq!(r_auto.to_bits(), r_ring.to_bits());
    assert_eq!(r_auto.to_bits(), r_tree.to_bits());
    assert_eq!(r_auto.to_bits(), r_host.to_bits());
    assert!(r_auto.is_finite() && r_auto > 0.0);
}

/// Tracing a multi-device run surfaces per-link utilization counters.
#[test]
fn trace_carries_link_utilization_counters() {
    let backend = Backend::dgx_a100(4);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(
        &backend,
        Dim3::new(8, 8, 16),
        &[&st],
        neon_domain::StorageMode::Real,
    )
    .unwrap();
    let dot = ScalarSet::<f64>::new(grid.num_partitions(), "dot", 0.0, |a, b| a + b);
    let x = Field::<f64, _>::new(&grid, "x", 1, 1.0, MemLayout::SoA).unwrap();
    let options = SkeletonOptions {
        trace: true,
        ..SkeletonOptions::default()
    };
    let mut app = Skeleton::sequence(
        &backend,
        "traced-dot",
        vec![neon_domain::ops::dot(&grid, &x, &x, &dot)],
        options,
    );
    app.run();
    let trace = app.take_trace().expect("trace enabled");
    assert!(
        trace
            .counters()
            .iter()
            .any(|(name, _)| name.starts_with("link:")),
        "expected per-link counters in the trace, got {:?}",
        trace.counters()
    );
    let json = trace.to_chrome_json();
    assert!(json.contains("\"ph\":\"C\""), "counter events exported");
}

// ---------------------------------------------------------------------------
// Hierarchical schedules and chunked communication (island fleets)
// ---------------------------------------------------------------------------

/// Island shapes the randomized fleet tests draw from: 2, 4 and 8 devices
/// carved into even and deliberately uneven boxes.
const ISLAND_SHAPES: &[&[usize]] = &[
    &[1, 1],
    &[2, 2],
    &[3, 1],
    &[2, 1, 1],
    &[4, 4],
    &[5, 3],
    &[2, 2, 2, 2],
    &[6, 1, 1],
];

/// Residual of a short CG solve on an island fleet with the given
/// skeleton options — the end-to-end bit-identity probe.
fn island_cg_residual(shape: &[usize], options: SkeletonOptions, iters: usize, seed: u64) -> f64 {
    use neon::apps::PoissonSolver;
    use neon_domain::StorageMode;

    let backend = Backend::dgx_islands(shape);
    let ndev = backend.num_devices();
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(
        &backend,
        Dim3::new(8, 8, 4 * ndev),
        &[&st],
        StorageMode::Real,
    )
    .unwrap();
    let mut solver = PoissonSolver::with_options(&grid, options).unwrap();
    let s = (seed % 7) as i64;
    solver.set_rhs(move |x, y, z| ((x as i64 * 7 + y as i64 * 3 + z as i64 + s) % 5) as f64 - 2.0);
    solver.solve_iters(iters);
    solver.residual()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end bit-identity of the hierarchical collective: for any
    /// island shape (2/4/8 devices, even or uneven), OCC level, rhs and
    /// iteration count, a CG solve routed through the hierarchical
    /// schedule produces the same residual bits as the flat ring and as
    /// auto-selection — the data path is a canonical rank-order fold no
    /// matter which timing schedule carries it.
    #[test]
    fn hierarchical_cg_bits_match_flat_on_island_fleets(
        shape_idx in 0usize..ISLAND_SHAPES.len(),
        occ_idx in 0usize..3,
        iters in 2usize..5,
        seed in any::<u64>(),
    ) {
        let shape = ISLAND_SHAPES[shape_idx];
        let occ = [OccLevel::None, OccLevel::Standard, OccLevel::TwoWayExtended][occ_idx];
        let opts = |mode: CollectiveMode| SkeletonOptions {
            occ,
            collectives: mode,
            ..SkeletonOptions::default()
        };
        let hier = island_cg_residual(
            shape, opts(CollectiveMode::Fixed(CollectiveAlgorithm::Hierarchical)), iters, seed);
        let ring = island_cg_residual(
            shape, opts(CollectiveMode::Fixed(CollectiveAlgorithm::Ring)), iters, seed);
        let auto = island_cg_residual(shape, opts(CollectiveMode::Auto), iters, seed);
        prop_assert_eq!(hier.to_bits(), ring.to_bits(),
            "hierarchical vs ring diverged on {:?}", shape);
        prop_assert_eq!(hier.to_bits(), auto.to_bits(),
            "hierarchical vs auto diverged on {:?}", shape);
    }

    /// Per-chunk event-driven communication is a *timing* refinement: for
    /// any island shape and OCC level, running the same solve with
    /// `CommMode::ChunkEvents` produces bit-identical residuals to the
    /// default epoch mode.
    #[test]
    fn chunk_events_cg_bits_match_epoch(
        shape_idx in 0usize..ISLAND_SHAPES.len(),
        occ_idx in 0usize..3,
        iters in 2usize..5,
        seed in any::<u64>(),
    ) {
        use neon::core::CommMode;
        let shape = ISLAND_SHAPES[shape_idx];
        let occ = [OccLevel::None, OccLevel::Standard, OccLevel::TwoWayExtended][occ_idx];
        let opts = |comm: CommMode| SkeletonOptions {
            occ,
            comm,
            ..SkeletonOptions::default()
        };
        let epoch = island_cg_residual(shape, opts(CommMode::Epoch), iters, seed);
        let chunked = island_cg_residual(shape, opts(CommMode::ChunkEvents), iters, seed);
        prop_assert_eq!(epoch.to_bits(), chunked.to_bits(),
            "chunk-events vs epoch diverged on {:?}", shape);
    }

    /// The hierarchical schedule never moves more bytes over the slow
    /// cross-island links than the flat algorithm the selector would
    /// otherwise pick: for the full-payload kinds (all-reduce and
    /// broadcast) it crosses the slow path the spanning-tree minimum
    /// number of times, whatever the payload or island split. (The
    /// shard-based kinds — reduce-scatter, all-gather — are excluded:
    /// flat rings move per-device shards while the hierarchical sweep
    /// carries the full payload, so the comparison is not byte-monotone
    /// there and the auto-selector's *time* estimate arbitrates instead.)
    #[test]
    fn hierarchical_slow_link_bytes_never_exceed_flat(
        shape_idx in 0usize..ISLAND_SHAPES.len(),
        kib in 0u64..=16_384,
        kind_idx in 0usize..2,
    ) {
        use neon::comm::choose_flat;
        let shape = ISLAND_SHAPES[shape_idx];
        prop_assume!(shape.len() > 1);
        let kind = [CollectiveKind::AllReduce, CollectiveKind::Broadcast][kind_idx];
        let bytes = 8 + kib * 1024;
        let topo = Topology::nvlink_islands(shape, 1555.0);
        let n = topo.num_devices();
        let run = |alg: Algorithm| {
            let mut q = QueueSim::new(n, 1);
            let engine = CollectiveEngine::with_config(
                topo.clone(),
                EngineConfig { algorithm: Some(alg), ..EngineConfig::default() },
            );
            engine.schedule(&mut q, kind, bytes, &zeros(n), 0, "slow");
            q.counters_snapshot().slow_link_bytes
        };
        let flat = choose_flat(kind, bytes, &topo);
        let hier_slow = run(Algorithm::Hierarchical);
        let flat_slow = run(flat);
        prop_assert!(
            hier_slow <= flat_slow,
            "{:?}/{}: hierarchical slow bytes {} > {} ({} B payload)",
            shape, kind, hier_slow, flat_slow, bytes
        );
    }
}
