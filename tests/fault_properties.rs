//! Property-based tests of the fault-injection + self-healing pipeline:
//! for random programs, random fault plans, any device count and any
//! optimization level, a healed run must be **bit-identical** to a
//! fault-free run.
//!
//! This works because the fault model gives failed attempts launch
//! semantics (no data side effects), retries only add virtual time, and
//! an escaped fault aborts the iteration *before* the faulted operation
//! runs — the rollback then replays from a checkpoint with the fault
//! specs already consumed.

use proptest::prelude::*;

use neon::prelude::*;
use neon_core::{FaultPlan, ResilienceOptions};
use neon_domain::{ops, FieldStencil as _, FieldWrite as _, StorageMode};

const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Outcome of one run of the random program: every field value and the
/// reduction scalar, as exact bit patterns.
#[derive(PartialEq, Eq, Debug)]
struct RunBits {
    u: Vec<u64>,
    v: Vec<u64>,
    s: u64,
    rollbacks: u64,
}

/// A small iterable program exercising every checkpointable state kind:
/// a stencil (`v ← Σ ngh(u)`, with halo exchanges when multi-device), a
/// read-write map (`u ← u + 0.25·v`) and a reduction (`s ← u·v`).
fn run_program(
    seed: i32,
    ndev: usize,
    occ: OccLevel,
    fusion: FusionLevel,
    resilience: ResilienceOptions,
    plan: Option<FaultPlan>,
    iters: usize,
) -> RunBits {
    let b = Backend::dgx_a100(ndev);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::new(4, 4, 16), &[&st], StorageMode::Real).unwrap();
    let u = Field::<f64, _>::new(&g, "u", 1, 0.0, MemLayout::SoA).unwrap();
    let v = Field::<f64, _>::new(&g, "v", 1, 0.0, MemLayout::SoA).unwrap();
    let s = ScalarSet::<f64>::new(ndev, "s", 0.0, |a, b| a + b);
    u.fill(move |x, y, z, _| ((x * 31 + y * 17 + z * 7 + seed) % 23) as f64 * 0.5);
    let sten = {
        let (uc, vc) = (u.clone(), v.clone());
        Container::compute("sten", g.as_space(), move |ldr| {
            let uv = ldr.read_stencil(&uc);
            let vv = ldr.write(&vc);
            Box::new(move |c| {
                let mut acc = 0.0;
                for slot in 0..6 {
                    acc += uv.ngh(c, slot, 0);
                }
                vv.set(c, 0, acc);
            })
        })
    };
    let relax = ops::axpy_const(&g, 0.25, &v, &u);
    let reduce = ops::dot(&g, &u, &v, &s);

    let mut sk = Skeleton::sequence(
        &b,
        "fault-prop",
        vec![sten, relax, reduce],
        SkeletonOptions {
            occ,
            fusion,
            resilience,
            ..Default::default()
        },
    );
    if let Some(p) = plan {
        sk.install_fault_plan(p);
    }
    let run = sk
        .run_iters_resilient(0, iters)
        .expect("transient faults must heal");

    let mut out = RunBits {
        u: Vec::new(),
        v: Vec::new(),
        s: s.host_value().to_bits(),
        rollbacks: run.rollbacks,
    };
    u.for_each(|_, _, _, _, val| out.u.push(val.to_bits()));
    v.for_each(|_, _, _, _, val| out.v.push(val.to_bits()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Healed runs are bit-identical to fault-free runs for any program
    /// seed, fault plan, device count, OCC level and fusion level —
    /// whether the faults are absorbed by retry or escape into rollback.
    #[test]
    fn prop_faulted_run_bit_identical(
        seed in 0i32..1000,
        fault_seed in 0u64..10_000,
        ndev_idx in 0usize..4,
        occ_idx in 0usize..4,
        fuse in any::<bool>(),
        n_faults in 0usize..6,
        max_attempts in 2u32..4,
        checkpoint_interval in 1u32..4,
    ) {
        let ndev = DEVICE_COUNTS[ndev_idx];
        let occ = OccLevel::ALL[occ_idx];
        let fusion = if fuse { FusionLevel::Conservative } else { FusionLevel::Off };
        let iters = 5usize;
        let resilience = ResilienceOptions {
            enabled: true,
            max_attempts,
            checkpoint_interval,
            ..ResilienceOptions::default()
        };
        // fails in seeded plans is 1..=2, so max_attempts == 2 makes some
        // faults escape retry and exercise the rollback path; 3 absorbs
        // everything in-place.
        let plan = FaultPlan::seeded(fault_seed, iters as u64, ndev, n_faults);

        let clean = run_program(seed, ndev, occ, fusion, resilience, None, iters);
        let faulted = run_program(seed, ndev, occ, fusion, resilience, Some(plan), iters);

        prop_assert_eq!(clean.rollbacks, 0);
        prop_assert_eq!(&faulted.u, &clean.u, "field u diverged");
        prop_assert_eq!(&faulted.v, &clean.v, "field v diverged");
        prop_assert_eq!(faulted.s, clean.s, "reduction scalar diverged");
    }

    /// The same fault plan under the same options is deterministic: two
    /// faulted runs agree bit-for-bit *and* in their recovery counters.
    #[test]
    fn prop_fault_recovery_deterministic(
        seed in 0i32..1000,
        fault_seed in 0u64..10_000,
        ndev_idx in 0usize..4,
        occ_idx in 0usize..4,
    ) {
        let ndev = DEVICE_COUNTS[ndev_idx];
        let occ = OccLevel::ALL[occ_idx];
        let iters = 4usize;
        let resilience = ResilienceOptions {
            enabled: true,
            max_attempts: 2,
            checkpoint_interval: 2,
            ..ResilienceOptions::default()
        };
        let mk_plan = || FaultPlan::seeded(fault_seed, iters as u64, ndev, 4);
        let a = run_program(seed, ndev, occ, FusionLevel::Off, resilience, Some(mk_plan()), iters);
        let b = run_program(seed, ndev, occ, FusionLevel::Off, resilience, Some(mk_plan()), iters);
        prop_assert_eq!(a, b);
    }
}
