#!/usr/bin/env bash
# Local mirror of the CI pipeline: build, test, format check, clippy.
# Run from the repository root before pushing.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace --quiet"
cargo test --workspace --quiet

echo "==> golden IR dump (compiler pipeline output pinned, incl. layout-select)"
cargo test -p neon-core --test golden_ir_dump --quiet

echo "==> layout/shape properties (AoS=SoA and shaped=generic bit-identity)"
cargo test -p neon-core --test layout_shape_properties --quiet

echo "==> functional executor smoke (parallel must match serial bit-for-bit)"
cargo run --release -p neon-bench --bin repro_functional -- --smoke

echo "==> fusion smoke (fused must match unfused bit-for-bit and cut launches/bytes)"
cargo run --release -p neon-bench --bin repro_fusion -- --smoke

echo "==> temporal smoke (super-steps bit-identical, 1 deep round per k iters, 4-dev win >= 25%)"
cargo run --release -p neon-bench --bin repro_temporal -- --smoke

echo "==> fault smoke (retry/rollback/eviction must recover bit-identically)"
cargo run --release -p neon-bench --bin repro_faults -- --smoke

echo "==> serving smoke (multiplexed jobs bit-identical to solo, wfq >= 1.3x fifo, Jain >= 0.9)"
cargo run --release -p neon-bench --bin repro_serve -- --smoke

echo "==> hierarchical smoke (bit-identical, >=20% win on [2,2]x16MiB, fewer slow-link bytes, chunk-events never loses)"
cargo run --release -p neon-bench --bin repro_hierarchical -- --smoke

echo "==> degraded-link smoke (transient overhead <= 10%, link repairs bit-transparent, split reroutes flat, straggler rebalance wins)"
cargo run --release -p neon-bench --bin repro_degraded -- --smoke

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
