#!/usr/bin/env bash
# Local mirror of the CI pipeline: build, test, format check, clippy.
# Run from the repository root before pushing.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace --quiet"
cargo test --workspace --quiet

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
