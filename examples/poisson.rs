//! Finite-difference Poisson solver (paper §VI-B): -∇²u = b on a dense
//! grid with a matrix-free conjugate-gradient solver, comparing OCC
//! levels on the same problem.
//!
//! Run with: `cargo run --release --example poisson`

use neon::apps::PoissonSolver;
use neon::prelude::*;
use neon_domain::StorageMode;

fn main() -> neon_sys::Result<()> {
    let backend = Backend::dgx_a100(4);
    let n = 32;
    let stencil = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, Dim3::cube(n), &[&stencil], StorageMode::Real)?;

    // A point source in the middle of the box, Dirichlet-0 boundary.
    let mid = (n / 2) as i32;
    let rhs = move |x: i32, y: i32, z: i32| {
        if (x, y, z) == (mid, mid, mid) {
            1.0
        } else {
            0.0
        }
    };

    println!(
        "Poisson {n}^3 on {} devices, point source\n",
        backend.num_devices()
    );
    for occ in [OccLevel::None, OccLevel::Standard, OccLevel::TwoWayExtended] {
        let mut solver = PoissonSolver::new(&grid, occ)?;
        solver.set_rhs(rhs);
        let mut iters_done = 0;
        let mut report = neon::core::ExecReport::default();
        // Iterate until the residual drops 8 orders of magnitude.
        let r0 = {
            let r = solver.solve_iters(1);
            report.makespan += r.makespan;
            iters_done += 1;
            solver.residual()
        };
        while solver.residual() > 1e-8 * r0 && iters_done < 500 {
            let r = solver.solve_iters(10);
            report.makespan += r.makespan;
            iters_done += 10;
        }
        println!(
            "{occ:>7}: {iters_done:>3} iterations, residual {:.2e}, simulated {}",
            solver.residual(),
            report.makespan,
        );
        if occ == OccLevel::TwoWayExtended {
            // The potential of a point source decays with distance —
            // print a radial slice through the source.
            println!("\nradial potential profile u(x, mid, mid):");
            for x in (0..n as i32).step_by(2) {
                let u = solver.solution().get(x, mid, mid, 0).unwrap();
                let bars = (u * 4e3) as usize;
                println!("x={x:>3}  u={u:+.5}  |{}", "#".repeat(bars.min(60)));
            }
            let centre = solver.solution().get(mid, mid, mid, 0).unwrap();
            let edge = solver.solution().get(1, mid, mid, 0).unwrap();
            assert!(centre > edge, "potential should peak at the source");
        }
    }
    Ok(())
}
