//! Lid-driven cavity flow with the D3Q19 Lattice-Boltzmann solver
//! (the paper's §VI-A application), on a simulated 4-GPU backend.
//!
//! Prints the centre-line velocity profile that characterizes the cavity
//! flow, plus mass-conservation and performance diagnostics.
//!
//! Run with: `cargo run --release --example lbm_cavity`

use neon::apps::lbm::{mlups, LbmParams, LidDrivenCavity};
use neon::prelude::*;
use neon_domain::StorageMode;

fn main() -> neon_sys::Result<()> {
    let backend = Backend::dgx_a100(4);
    let n = 48;
    let stencil = Stencil::d3q19();
    let grid = DenseGrid::new(&backend, Dim3::cube(n), &[&stencil], StorageMode::Real)?;

    let params = LbmParams {
        omega: 1.2,
        u_lid: 0.1,
    };
    let mut cavity = LidDrivenCavity::new(&grid, params, OccLevel::Standard)?;
    cavity.init();
    let mass0 = cavity.total_mass();

    let iters = 200;
    let report = cavity.step(iters);

    println!(
        "lid-driven cavity {n}^3, {} devices, {iters} iterations",
        backend.num_devices()
    );
    println!(
        "simulated time/iter: {}  ->  {:.1} MLUPS",
        report.time_per_execution(),
        mlups(grid.active_cells(), 1, report.time_per_execution().as_us()),
    );
    let mass = cavity.total_mass();
    println!(
        "mass drift: {:.2e} (relative)",
        (mass - mass0).abs() / mass0
    );

    // Centre-line x-velocity profile u_x(y) at the cavity mid-plane: the
    // classic validation curve — positive near the moving lid, reversed
    // (negative) in the lower half.
    println!("\ncentre-line profile u_x(y) at x=z={}:", n / 2);
    let c = (n / 2) as i32;
    for y in (0..n as i32).step_by(4) {
        let (_, u) = cavity.macroscopic(c, y, c).expect("in domain");
        let bars = ((u[0] / params.u_lid).clamp(-1.0, 1.0) * 30.0) as i32;
        let bar: String = if bars >= 0 {
            format!("{}{}", " ".repeat(30), "#".repeat(bars as usize))
        } else {
            format!(
                "{}{}{}",
                " ".repeat((30 + bars) as usize),
                "#".repeat((-bars) as usize),
                ""
            )
        };
        println!("y={y:>3}  u_x={:+.4}  |{bar:<61}|", u[0]);
    }
    let (_, top) = cavity.macroscopic(c, n as i32 - 1, c).unwrap();
    let (_, bottom) = cavity.macroscopic(c, 1, c).unwrap();
    println!(
        "\nnear-lid u_x = {:+.4}, near-floor u_x = {:+.4}",
        top[0], bottom[0]
    );
    assert!(top[0] > 0.0, "flow should follow the lid");
    Ok(())
}
