//! Heat diffusion on a block-sparse domain, exported to VTK.
//!
//! Demonstrates two extensions built on the paper's model: the
//! block-sparse grid (sparsity at B³-block granularity) and field export
//! for visualization — while the solver code itself is the same generic
//! `HeatSolver` that runs on dense and element-sparse grids.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use neon::apps::heat::HeatSolver;
use neon::prelude::*;
use neon_domain::{io, StorageMode};

fn main() -> neon_sys::Result<()> {
    let backend = Backend::dgx_a100(2);
    let n = 32;
    let stencil = Stencil::seven_point();

    // An L-shaped solid: the union of two slabs, blockified at B = 4.
    let mask = move |x: i32, y: i32, _z: i32| x < n as i32 / 2 || y < n as i32 / 2;
    let grid = BlockSparseGrid::new(
        &backend,
        Dim3::cube(n),
        4,
        &[&stencil],
        mask,
        StorageMode::Real,
    )?;
    println!(
        "L-shaped domain: {} active cells of {} ({}% blocks stored on dev0: {})",
        grid.active_cells(),
        Dim3::cube(n).count(),
        100 * grid.active_cells() / Dim3::cube(n).count(),
        grid.stored_blocks(DeviceId(0)),
    );

    let mut solver = HeatSolver::new(&grid, 1.0 / 6.0, OccLevel::Standard)?;
    // A hot spot in the inner corner of the L.
    let c = n as i32 / 4;
    solver.set_initial(move |x, y, z| {
        let d2 = (x - c).pow(2) + (y - c).pow(2) + (z - n as i32 / 2).pow(2);
        if d2 < 9 {
            100.0
        } else {
            0.0
        }
    });

    let heat0 = solver.total_heat();
    for snapshot in 0..3 {
        let report = solver.step(40);
        println!(
            "after {:>3} steps: total heat {:.2} (simulated {})",
            (snapshot + 1) * 40,
            solver.total_heat(),
            report.makespan,
        );
        let path = std::env::temp_dir().join(format!("neon_heat_{snapshot}.vtk"));
        let mut fh = std::io::BufWriter::new(std::fs::File::create(&path).expect("create vtk"));
        io::write_vtk(solver.temperature(), "temperature", &mut fh).expect("write vtk");
        println!("  snapshot written to {}", path.display());
    }
    println!(
        "\nheat decayed from {heat0:.1} to {:.1} through the walls; open the\n\
         .vtk files in ParaView to see the diffusion through the L-domain",
        solver.total_heat()
    );
    Ok(())
}
