//! 2-D flow past a cylinder (the Kármán vortex street benchmark of the
//! paper's Table I) on the D2Q9 lattice, with an ASCII visualization of
//! the wake.
//!
//! Run with: `cargo run --release --example karman_vortex`

use neon::apps::lbm::d2q9::{KarmanParams, KarmanVortex};
use neon::prelude::*;
use neon_domain::StorageMode;

fn main() -> neon_sys::Result<()> {
    let backend = Backend::dgx_a100(1);
    let (nx, ny) = (160, 48);
    let stencil = Stencil::d2q9();
    let grid = DenseGrid::new(
        &backend,
        Dim3::new(nx, ny, 1),
        &[&stencil],
        StorageMode::Real,
    )?;
    let params = KarmanParams::for_domain(nx, ny);
    let mut flow = KarmanVortex::new(&grid, params, OccLevel::None)?;
    flow.init();

    let iters = 600;
    let report = flow.step(iters);
    println!(
        "Karman vortex street {nx}x{ny}, {iters} iterations, simulated {} ({} / iter)",
        report.makespan,
        report.time_per_execution()
    );

    // ASCII speed map: '#' = cylinder, darker = slower.
    println!();
    let ramp: &[u8] = b" .:-=+*%@";
    for y in (0..ny as i32).rev().step_by(2) {
        let mut row = String::with_capacity(nx);
        for x in 0..nx as i32 {
            if params.in_cylinder(x, y) {
                row.push('#');
            } else {
                let (ux, uy) = flow.velocity(x, y).unwrap();
                let speed = (ux * ux + uy * uy).sqrt() / (1.5 * params.u_in);
                let idx = ((speed * (ramp.len() - 1) as f64) as usize).min(ramp.len() - 1);
                row.push(ramp[idx] as char);
            }
        }
        println!("{row}");
    }

    // The wake behind the cylinder is slower than the free stream.
    let (cx, cy) = params.centre;
    let (wake, _) = flow
        .velocity(cx as i32 + params.radius as i32 * 2, cy as i32)
        .unwrap();
    let (free, _) = flow.velocity(cx as i32, 2).unwrap();
    println!("\nwake u_x = {wake:+.4} vs channel u_x = {free:+.4}");
    Ok(())
}
