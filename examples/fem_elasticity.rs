//! Matrix-free FEM linear elasticity (paper §VI-C): a solid column under
//! compressive load, solved on BOTH the dense and the element-sparse
//! grid with the *same* solver code — the paper's headline claim that the
//! data structure is a swappable parameter.
//!
//! Run with: `cargo run --release --example fem_elasticity`

use neon::apps::fem::{ElasticitySolver, Material};
use neon::prelude::*;
use neon_domain::StorageMode;

fn main() -> neon_sys::Result<()> {
    let backend = Backend::dgx_a100(2);
    let n = 12;
    let stencil = Stencil::twenty_seven_point();
    let material = Material { e: 1.0, nu: 0.3 };
    let pressure = 0.001;
    let iters = 250;

    // Dense grid: the full box is solid.
    let dense = DenseGrid::new(&backend, Dim3::cube(n), &[&stencil], StorageMode::Real)?;
    let mut dense_solver =
        ElasticitySolver::new(&dense, material, MemLayout::SoA, OccLevel::Standard)?;
    dense_solver.set_pressure_load(pressure);
    let dense_report = dense_solver.solve_iters(iters);

    // Element-sparse grid with the same (full) active set: identical
    // physics, different data structure, same computation code.
    let sparse = SparseGrid::new(
        &backend,
        Dim3::cube(n),
        &[&stencil],
        |_, _, _| true,
        StorageMode::Real,
    )?;
    let mut sparse_solver =
        ElasticitySolver::new(&sparse, material, MemLayout::SoA, OccLevel::Standard)?;
    sparse_solver.set_pressure_load(pressure);
    let sparse_report = sparse_solver.solve_iters(iters);

    println!(
        "elastic column {n}^3, E={}, nu={}, pressure {pressure}",
        material.e, material.nu
    );
    println!(
        "dense grid : residual {:.3e}, simulated {}",
        dense_solver.residual(),
        dense_report.makespan
    );
    println!(
        "sparse grid: residual {:.3e}, simulated {}",
        sparse_solver.residual(),
        sparse_report.makespan
    );

    // The two data structures must agree on the physics.
    let mid = (n / 2) as i32;
    let mut max_diff = 0.0f64;
    dense_solver.displacements().for_each(|x, y, z, k, v| {
        let s = sparse_solver.displacements().get(x, y, z, k).unwrap();
        max_diff = max_diff.max((v - s).abs());
    });
    println!("max |dense - sparse| displacement: {max_diff:.2e}");
    assert!(max_diff < 1e-8, "data structures disagree");

    // Compression profile along the column axis.
    println!("\nvertical displacement u_z(z) at the column centre:");
    for z in 0..n as i32 {
        let uz = dense_solver.displacements().get(mid, mid, z, 2).unwrap();
        let bars = (-uz * 2e4) as usize;
        println!("z={z:>3}  u_z={uz:+.6}  |{}", "#".repeat(bars.min(60)));
    }
    let top = dense_solver
        .displacements()
        .get(mid, mid, n as i32 - 1, 2)
        .unwrap();
    assert!(top < 0.0, "column should compress under the load");
    println!("\ncolumn top sinks by {:.6} — compressed as expected", -top);
    Ok(())
}
