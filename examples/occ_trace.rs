//! Visualizing overlap of computation and communication: runs the same
//! map→stencil pipeline at every OCC level and prints the virtual-clock
//! timelines (the paper's Fig. 1), plus a Chrome-trace JSON export for
//! `chrome://tracing` / Perfetto.
//!
//! Run with: `cargo run --release --example occ_trace`

use neon::prelude::*;
use neon_domain::{FieldStencil as _, FieldWrite as _, StorageMode};

fn build(backend: &Backend, occ: OccLevel) -> Skeleton {
    let stencil = Stencil::seven_point();
    let grid = DenseGrid::new(
        backend,
        Dim3::new(192, 192, 64),
        &[&stencil],
        StorageMode::Virtual, // timing-only: no host RAM needed
    )
    .expect("grid");
    let a = Field::<f64, _>::new(&grid, "a", 8, 0.0, MemLayout::SoA).expect("field");
    let b = Field::<f64, _>::new(&grid, "b", 8, 0.0, MemLayout::SoA).expect("field");
    let map = {
        let ac = a.clone();
        Container::compute("map", grid.as_space(), move |ldr| {
            let av = ldr.read_write(&ac);
            Box::new(move |c| av.set(c, 0, av.at(c, 0) + 1.0))
        })
    };
    let sten = {
        let (ac, bc) = (a.clone(), b.clone());
        Container::compute("stn", grid.as_space(), move |ldr| {
            let av = ldr.read_stencil(&ac);
            let bv = ldr.write(&bc);
            Box::new(move |c| bv.set(c, 0, av.ngh(c, 0, 0)))
        })
    };
    let mut opts = SkeletonOptions::with_occ(occ);
    opts.trace = true;
    Skeleton::sequence(backend, "occ-trace", vec![map, sten], opts)
}

fn main() {
    let backend = Backend::gv100_pcie(2); // slow links make overlap visible
    for occ in [
        OccLevel::None,
        OccLevel::Standard,
        OccLevel::Extended,
        OccLevel::TwoWayExtended,
    ] {
        let mut sk = build(&backend, occ);
        let report = sk.run();
        let trace = sk.take_trace().expect("tracing enabled");
        println!("=== {occ}: makespan {} ===", report.makespan);
        print!("{}", trace.ascii_timeline(70));
        let path = std::env::temp_dir().join(format!("neon_occ_{occ}.trace.json"));
        std::fs::write(&path, trace.to_chrome_json()).expect("write trace");
        println!("chrome trace written to {}\n", path.display());
    }
    println!("open the .json files in chrome://tracing or https://ui.perfetto.dev");
}
