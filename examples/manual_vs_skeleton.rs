//! The paper's Fig. 1 motivation, made runnable: hand-scheduling OCC at
//! the Set level takes a page of stream/event bookkeeping; the Skeleton
//! achieves the same overlap from three lines of sequential code.
//!
//! Both versions run the map→stencil pipeline on 2 GPUs; the manual
//! version reimplements the *extended* OCC schedule by hand (boundary
//! map first, halo on a transfer stream, internal work overlapped), and
//! the timings come out the same.
//!
//! Run with: `cargo run --release --example manual_vs_skeleton`

use neon::prelude::*;
use neon_domain::{FieldStencil as _, FieldWrite as _, StorageMode};
use neon_set::ManualRuntime;

struct Pipeline {
    x: Field<f64, DenseGrid>,
    map: Container,
    stencil: Container,
}

fn build(backend: &Backend) -> Pipeline {
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(
        backend,
        Dim3::new(256, 256, 64),
        &[&st],
        StorageMode::Virtual,
    )
    .unwrap();
    let x = Field::<f64, _>::new(&grid, "X", 8, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&grid, "Y", 8, 0.0, MemLayout::SoA).unwrap();
    let map = {
        let xc = x.clone();
        Container::compute("map", grid.as_space(), move |ldr| {
            let xv = ldr.read_write(&xc);
            Box::new(move |c| xv.set(c, 0, 2.0 * xv.at(c, 0) + 1.0))
        })
    };
    let stencil = {
        let (xc, yc) = (x.clone(), y.clone());
        Container::compute("stn", grid.as_space(), move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |c| {
                let mut s = 0.0;
                for slot in 0..6 {
                    s += xv.ngh(c, slot, 0);
                }
                yv.set(c, 0, s);
            })
        })
    };
    Pipeline { x, map, stencil }
}

/// Fig. 1c by hand: every launch, stream choice and event is ours.
fn manual_extended_occ(backend: &Backend) -> SimTime {
    let p = build(backend);
    let halo = p.x.halo().expect("partitioned field");
    let mut rt = ManualRuntime::new(backend, 2);
    rt.set_functional(false);
    let compute = rt.stream_set(0);
    let transfer = rt.stream_set(1);
    let map_done_bnd = rt.event_set();
    let halo_done = rt.event_set();

    // 1. Boundary map first — the halo depends only on it.
    rt.launch(&p.map, DataView::Boundary, compute);
    rt.record(compute, map_done_bnd);
    // 2. Halo on the transfer stream, gated on the boundary map.
    rt.wait(transfer, map_done_bnd).unwrap();
    rt.halo_update(halo.as_ref(), transfer);
    rt.record(transfer, halo_done);
    // 3. Internal map + internal stencil overlap the transfer.
    rt.launch(&p.map, DataView::Internal, compute);
    rt.launch(&p.stencil, DataView::Internal, compute);
    // 4. Boundary stencil must wait for the halo.
    rt.wait(compute, halo_done).unwrap();
    rt.launch(&p.stencil, DataView::Boundary, compute);
    rt.sync()
}

/// The same pipeline, automated: sequential code in, overlap out.
fn skeleton_extended_occ(backend: &Backend) -> SimTime {
    let p = build(backend);
    let mut sk = Skeleton::sequence(
        backend,
        "auto",
        vec![p.map, p.stencil],
        SkeletonOptions::with_occ(OccLevel::Extended),
    );
    sk.run().makespan
}

fn main() {
    let backend = Backend::dgx_a100(2);
    let manual = manual_extended_occ(&backend);
    let auto = skeleton_extended_occ(&backend);
    println!("hand-written extended OCC (Set level):   {manual}");
    println!("Skeleton, OccLevel::Extended (2 lines):  {auto}");
    let ratio = auto.as_us() / manual.as_us();
    println!("ratio: {ratio:.3} (the automation matches the expert schedule)");
    assert!(
        (0.9..=1.1).contains(&ratio),
        "skeleton should match the hand schedule"
    );
}
