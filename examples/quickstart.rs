//! Quickstart: the Neon programming model in ~60 lines.
//!
//! Mirrors the paper's introduction example: define a grid and fields,
//! write a map and a stencil as sequential containers, and let the
//! Skeleton distribute them over a multi-GPU backend — halo exchanges,
//! dependency analysis and OCC included.
//!
//! Run with: `cargo run --release --example quickstart`

use neon::prelude::*;
use neon_domain::{ops, FieldRead as _, FieldStencil as _, FieldWrite as _, StorageMode};

fn main() -> neon_sys::Result<()> {
    // A simulated 4-GPU DGX-A100 backend. Swap for `Backend::cpu()` or
    // a different device count — the rest of the program is unchanged.
    let backend = Backend::dgx_a100(4);

    // A 64x64x64 dense grid, partitioned over the devices in z-slabs.
    // Registering the 7-point stencil fixes the halo radius.
    let stencil = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, Dim3::cube(64), &[&stencil], StorageMode::Real)?;

    // Two scalar fields; `0.0` is returned by stencil reads outside the
    // domain (the paper's outsideDomainValue).
    let u = Field::<f64, _>::new(&grid, "u", 1, 0.0, MemLayout::SoA)?;
    let lap = Field::<f64, _>::new(&grid, "lap", 1, 0.0, MemLayout::SoA)?;
    u.fill(|x, y, z, _| (x + y + z) as f64);

    // A map container: u <- 2u + 1. The loading lambda declares accesses
    // through the Loader; the compute lambda runs per cell, per device.
    let scale = {
        let uc = u.clone();
        Container::compute("scale", grid.as_space(), move |loader| {
            let uv = loader.read_write(&uc);
            Box::new(move |c| uv.set(c, 0, 2.0 * uv.at(c, 0) + 1.0))
        })
    };

    // A stencil container: lap <- Laplacian(u). Declaring `read_stencil`
    // is what makes the Skeleton insert (and overlap) halo updates.
    let laplacian = {
        let (uc, lc) = (u.clone(), lap.clone());
        Container::compute("laplacian", grid.as_space(), move |loader| {
            let uv = loader.read_stencil(&uc);
            let lv = loader.write(&lc);
            Box::new(move |c| {
                let mut s = 0.0;
                for slot in 0..6 {
                    s += uv.ngh(c, slot, 0);
                }
                lv.set(c, 0, s - 6.0 * uv.at(c, 0));
            })
        })
    };

    // A reduction: the L2 norm of the Laplacian.
    let norm_sq = ScalarSet::<f64>::new(backend.num_devices(), "norm", 0.0, |a, b| a + b);
    let dot = ops::dot(&grid, &lap, &lap, &norm_sq);

    // The application is the *sequential* list; the Skeleton finds the
    // parallelism and applies overlap of computation and communication.
    let mut app = Skeleton::sequence(
        &backend,
        "quickstart",
        vec![scale, laplacian, dot],
        SkeletonOptions::with_occ(OccLevel::TwoWayExtended),
    );
    let report = app.run();

    println!("ran on {} devices", backend.num_devices());
    println!("simulated makespan: {}", report.makespan);
    println!("||lap||_2 = {:.6}", norm_sq.host_value().sqrt());
    println!("lap at centre: {:?}", lap.get(32, 32, 32, 0));
    // The interior Laplacian of an affine field is 0 after the affine
    // map: check it.
    assert_eq!(lap.get(32, 32, 32, 0), Some(0.0));
    println!("interior Laplacian of an affine field is exactly zero — ok");
    Ok(())
}
