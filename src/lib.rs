//! # neon — a Rust reproduction of the Neon multi-GPU programming model
//!
//! This facade crate re-exports the full stack:
//!
//! * [`sys`] — System abstraction: simulated devices, streams, events,
//!   memory accounting and interconnect/performance models.
//! * [`set`] — Set abstraction: multi-GPU data, containers, loaders.
//! * [`domain`] — Domain abstraction: grids (dense & element-sparse),
//!   fields (SoA/AoS), data views and halo coherency.
//! * [`comm`] — Communication abstraction: collective primitives
//!   (all-reduce, reduce-scatter, all-gather, broadcast) with ring /
//!   tree / host-staged algorithms over the interconnect model.
//! * [`core`] — Skeleton abstraction: dependency graphs, multi-GPU graph
//!   transforms, OCC optimizations, scheduling and execution.
//! * [`apps`] — the paper's evaluation applications: LBM fluid solvers,
//!   a finite-difference Poisson solver and an FEM linear-elastic solver.
//!
//! See `examples/quickstart.rs` for a minimal end-to-end program.

pub use neon_apps as apps;
pub use neon_comm as comm;
pub use neon_core as core;
pub use neon_domain as domain;
pub use neon_set as set;
pub use neon_sys as sys;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use neon_comm::Algorithm as CollectiveAlgorithm;
    pub use neon_core::{
        CollectiveMode, ExecError, ExecReport, FusionLevel, HaloPolicy, OccLevel,
        ResilienceOptions, Skeleton, SkeletonOptions,
    };
    pub use neon_domain::{
        BlockSparseGrid, Cell, DataView, DenseGrid, Dim3, Field, GridLike, MemLayout, SparseGrid,
        Stencil,
    };
    pub use neon_set::{Container, Loader, ScalarSet};
    pub use neon_sys::{Backend, DeviceId, FaultPlan, SimTime};
}
