//! Offline shim for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment has no network access, so this crate provides the
//! small API surface the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups and
//! [`BenchmarkId`] — backed by a plain `std::time::Instant` timer that
//! prints mean per-iteration times. No statistics, HTML reports or
//! comparisons; the repository's quantitative results come from the
//! virtual-clock `repro_*` binaries, not from these wall-clock benches.

use std::time::{Duration, Instant};

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly, measuring total wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier of one parameterized benchmark case.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn run_case(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size.max(1) as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!(
        "bench {label:<48} {:>12.3} us/iter ({} iters)",
        per_iter * 1e6,
        b.iters
    );
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Time a single benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_case(id, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of parameterized benchmark cases.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Time one case of the group with its input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_case(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Define a benchmark group function, optionally with a configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u64;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert!(count >= 3);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut hits = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| hits += x)
        });
        group.finish();
        assert_eq!(hits, 14);
    }
}
