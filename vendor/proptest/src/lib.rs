//! Offline shim for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment of this repository has no network access, so the
//! subset of the proptest API the workspace's property tests use is
//! reimplemented here on top of a deterministic xorshift generator:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] / [`prop_oneof!`],
//! * [`strategy::Strategy`] with `prop_map` and `boxed`,
//! * range, tuple, `any::<T>()`, `Just` and `collection::vec` strategies.
//!
//! Deviations from real proptest: no shrinking (a failing case reports its
//! inputs instead of minimizing them) and a fixed per-test seed derived from
//! the test's name, so runs are reproducible by construction. Regression
//! files (`*.proptest-regressions`) are ignored.

pub mod test_runner {
    /// Deterministic xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeded generator (seed 0 is mapped to a fixed non-zero state).
        pub fn new(seed: u64) -> Self {
            TestRng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty sampling range");
            self.next_u64() % n
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case violated a `prop_assume!` precondition; it is skipped.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    /// Result type of a generated test body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (only `cases` is honoured by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// FNV-1a over a test name: the fixed seed of that test.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { s: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(move |rng: &mut TestRng| self.sample(rng)),
            }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        s: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.s.sample(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V> {
        inner: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.inner)(rng)
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct OneOf<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Build a [`OneOf`]; used by the `prop_oneof!` macro.
    pub fn one_of<V>(arms: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types samplable uniformly from a half-open range.
    pub trait Uniform: Copy {
        /// Draw from `[lo, hi)`.
        fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),+) => {$(
            impl Uniform for $t {
                fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )+};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Uniform for f64 {
        fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
            assert!(lo < hi, "empty range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    impl Uniform for f32 {
        fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
            f64::sample_range(lo as f64, hi as f64, rng) as f32
        }
    }

    impl<T: Uniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_range(self.start, self.end, rng)
        }
    }

    /// Types with a successor, enabling inclusive integer ranges.
    pub trait StepUp: Uniform {
        /// `self + 1` (must not overflow for valid inclusive ranges).
        fn step_up(self) -> Self;
    }

    macro_rules! impl_step_up {
        ($($t:ty),+) => {$(
            impl StepUp for $t {
                fn step_up(self) -> Self {
                    self.checked_add(1).expect("inclusive range end overflows")
                }
            }
        )+};
    }
    impl_step_up!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: StepUp> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_range(*self.start(), self.end().step_up(), rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($({ let $v = $s.sample(rng); $v },)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
}

pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// Vectors of `element` values with a length in `len` (half-open).
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy {
            element,
            lo: len.start,
            hi: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a `proptest!` body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skip cases that do not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($config); $($(#[$meta])* fn $name($($arg in $strat),+) $body)*);
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default());
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::new(
                    $crate::test_runner::seed_from_name(stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property '{}' failed: {}\n  inputs: {}", stringify!($name), msg, inputs)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::new(42);
        let mut b = crate::test_runner::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategy_respects_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0usize..100, flip in any::<bool>()) {
            prop_assume!(x > 0 || flip);
            prop_assert!(x < 100);
            prop_assert_eq!(x + 1, 1 + x);
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(prop_oneof![0i32..10, 100i32..110], 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert!((0..10).contains(&x) || (100..110).contains(&x));
            }
        }
    }
}
